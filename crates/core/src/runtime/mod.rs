//! The runtime layer (§3.1): one event loop per runtime thread.
//!
//! Since the protocol extraction, this file is a thin **executor** for the
//! sans-I/O machines in [`crate::protocol`]: it translates mailbox messages
//! into protocol events, feeds them to the per-chunk [`HomeMachine`] or the
//! pure [`CacheMachine`], and executes the returned actions against the real
//! world — the fabric, the cache region, the dentries, the simulator clock.
//! All protocol *decisions* (who to invalidate, when to recall, which
//! crossing messages to ignore) live in the machines; everything here is
//! mechanical translation plus the executor-only concerns the machines
//! cannot own:
//!
//! * **cache allocation & watermark eviction** (Figure 7) — which line to
//!   hand out, when to reclaim;
//! * **sequential prefetch policy** — the machines emit a `PrefetchHint`,
//!   the executor decides whether the miss pattern warrants acting on it;
//! * **deferred drains** — every rights-removing transition follows
//!   Figure 5 (set `delay_flag`, install the state, wait for references to
//!   drain). A naive runtime would block its message loop while waiting;
//!   instead, drains whose reference count is still nonzero are *deferred* —
//!   the runtime keeps serving messages and polls the refcount between
//!   them, feeding the machine a `Drained` event when it hits zero;
//! * **distributed locks** — the element-lock tables are orthogonal to the
//!   coherence protocol and stay here.

use std::sync::Arc;

use dsim::{Ctx, Mailbox, WaitCell};
use rdma_fabric::NodeId;

use crate::cache::CacheRegion;
use crate::comm::CommHandle;
use crate::dentry::{Dentry, LINE_HOME, LINE_NONE};
use crate::msg::{ArrayId, ChunkId, LocalKind, LocalReq, LockKind, Rpc, RtMsg};
use crate::op::OpId;
use crate::protocol::{
    AfterDrain, CacheAction, CacheEvent, CacheMachine, CacheView, Counter, HomeAction, HomeEvent,
    Kind, Request, Requester, Transition,
};
use crate::shared::{ArrayShared, ClusterShared};
use crate::state::LocalState;
use crate::stats::NodeStats;

mod locks;

/// Continuation run after a deferred drain completes: feed the matching
/// machine its completion event.
enum Cont {
    /// The home dentry's drain (gating a directory transition) finished:
    /// deliver [`HomeEvent::Drained`].
    Home,
    /// A requester-side drain finished: deliver [`CacheEvent::Drained`]
    /// carrying the follow-up the cache machine recorded at drain start.
    Cache(AfterDrain),
}

struct Deferred {
    array: ArrayId,
    chunk: ChunkId,
    cont: Cont,
}

/// One runtime thread: owns a cache region and the protocol state of every
/// chunk the cluster-wide [`crate::placement::Placement`] maps to `rt_idx`.
pub(crate) struct RuntimeThread {
    pub node: NodeId,
    pub rt_idx: usize,
    pub shared: Arc<ClusterShared>,
    pub comm: CommHandle,
    pub cache: Arc<CacheRegion>,
    pub mailbox: Mailbox<RtMsg>,
    deferred: Vec<Deferred>,
    ready: Vec<(ArrayId, ChunkId, Cont)>,
    /// Last read-miss chunk, for sequential-pattern prefetch detection.
    last_miss: Option<(ArrayId, ChunkId)>,
}

impl RuntimeThread {
    pub(crate) fn new(
        node: NodeId,
        rt_idx: usize,
        shared: Arc<ClusterShared>,
        comm: CommHandle,
        cache: Arc<CacheRegion>,
        mailbox: Mailbox<RtMsg>,
    ) -> Self {
        Self {
            node,
            rt_idx,
            shared,
            comm,
            cache,
            mailbox,
            deferred: Vec::new(),
            ready: Vec::new(),
            last_miss: None,
        }
    }

    fn stats(&self) -> &NodeStats {
        &self.shared.stats[self.node]
    }

    /// Word offset of a cacheline within the node's cache region.
    #[inline]
    fn line_off(&self, line: u32) -> usize {
        line as usize * self.shared.cfg.cache.line_words
    }

    /// Bump the `NodeStats` field a machine-emitted [`Counter`] names.
    fn count(&self, c: Counter) {
        if matches!(c, Counter::Evictions) {
            // Evictions are also charged per-pool: `self.cache` is this
            // thread's own pool, the only one its watermark scan touches.
            self.cache.note_eviction();
        }
        let s = self.stats();
        NodeStats::bump(match c {
            Counter::Fills => &s.fills,
            Counter::Invalidations => &s.invalidations,
            Counter::Writebacks => &s.writebacks,
            Counter::OperandFlushes => &s.operand_flushes,
            Counter::Recalls => &s.recalls,
            Counter::OperatedReductions => &s.operated_reductions,
            Counter::Evictions => &s.evictions,
            Counter::SharersPruned => &s.sharers_pruned,
            Counter::EpochsAborted => &s.epochs_aborted,
            Counter::FlushPersists => &s.flush_persists,
            Counter::MigrationsOut => &s.migrations_out,
            Counter::MigrationsIn => &s.migrations_in,
            Counter::ParkedReplays => &s.parked_replays,
        });
    }

    /// Record a machine-emitted structured transition: counted always,
    /// printed when chunk tracing is active.
    fn transition(&self, ctx: &Ctx, aid: ArrayId, chunk: ChunkId, t: &Transition) {
        NodeStats::bump(&self.stats().transitions);
        crate::trace::transition(aid, chunk, self.node, ctx.now(), t);
    }

    /// The event loop (runs until `RtMsg::Shutdown`).
    pub(crate) fn run(mut self, ctx: &mut Ctx) {
        loop {
            let msg = if self.deferred.is_empty() {
                self.mailbox.recv(ctx)
            } else {
                match self.mailbox.try_recv(ctx) {
                    Some(m) => m,
                    None => {
                        ctx.spin_hint(50);
                        self.poll_deferred();
                        self.drain_ready(ctx);
                        continue;
                    }
                }
            };
            match msg {
                RtMsg::Shutdown => break,
                RtMsg::Local(req) => {
                    ctx.charge(self.shared.cfg.cost.local_req_handle_ns);
                    NodeStats::bump(&self.stats().local_handled);
                    self.handle_local(ctx, req);
                }
                RtMsg::Net { src, array, rpc } => {
                    ctx.charge(self.shared.cfg.cost.rpc_handle_ns);
                    NodeStats::bump(&self.stats().rpcs_handled);
                    self.handle_rpc(ctx, src, array, rpc);
                }
                RtMsg::Retry { array, chunk } => {
                    self.home_event(ctx, array, chunk, HomeEvent::RetryExpired);
                }
                RtMsg::PeerDown { node, epoch } => self.handle_peer_down(ctx, node, epoch),
                RtMsg::PeerRestarted { node, epoch } => self.handle_peer_restart(ctx, node, epoch),
                RtMsg::Migrate { array, chunk, to } => {
                    // Only the chunk's current home may start a migration;
                    // anything else (stale request racing a previous move)
                    // is dropped here and the machine rejects the rest.
                    let arr = self.shared.array(array);
                    if arr.elastic
                        && to != self.node
                        && arr.home_on(self.node, chunk as usize) == self.node
                        && !self.shared.is_peer_down(self.node, to)
                    {
                        self.home_event(ctx, array, chunk, HomeEvent::BeginMigration { to });
                    }
                }
            }
            self.poll_deferred();
            self.drain_ready(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Drain machinery
    // ------------------------------------------------------------------

    /// Begin a Figure-5 drain towards `new_state`; `cont` runs once all
    /// references are gone (immediately, in the common case).
    fn start_drain(
        &mut self,
        arr: &ArrayShared,
        chunk: ChunkId,
        new_state: LocalState,
        tag: u32,
        cont: Cont,
    ) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        d.begin_drain(new_state, tag);
        if d.drained() {
            d.end_drain();
            self.ready.push((arr.id, chunk, cont));
        } else {
            self.deferred.push(Deferred {
                array: arr.id,
                chunk,
                cont,
            });
        }
    }

    fn poll_deferred(&mut self) {
        let mut i = 0;
        while i < self.deferred.len() {
            let (aid, chunk) = (self.deferred[i].array, self.deferred[i].chunk);
            let arr = self.shared.array(aid);
            let d = &arr.per_node[self.node].dentries[chunk as usize];
            if d.drained() {
                d.end_drain();
                let df = self.deferred.swap_remove(i);
                self.ready.push((df.array, df.chunk, df.cont));
            } else {
                i += 1;
            }
        }
    }

    fn drain_ready(&mut self, ctx: &mut Ctx) {
        while let Some((aid, chunk, cont)) = self.ready.pop() {
            self.run_cont(ctx, aid, chunk, cont);
        }
    }

    fn run_cont(&mut self, ctx: &mut Ctx, aid: ArrayId, chunk: ChunkId, cont: Cont) {
        match cont {
            Cont::Home => {
                crate::trace::event(
                    aid,
                    chunk,
                    self.node,
                    ctx.now(),
                    format_args!("HOME-DRAINED"),
                );
                self.home_event(ctx, aid, chunk, HomeEvent::Drained);
            }
            Cont::Cache(after) => {
                crate::trace::event(
                    aid,
                    chunk,
                    self.node,
                    ctx.now(),
                    format_args!("DRAINED {after:?}"),
                );
                let arr = self.shared.array(aid);
                let home = arr.home_on(self.node, chunk as usize);
                let home_down = self.shared.is_peer_down(self.node, home);
                self.cache_event(
                    ctx,
                    &arr,
                    chunk,
                    CacheEvent::Drained { after, home_down },
                    None,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Home-machine executor
    // ------------------------------------------------------------------

    /// Feed `ev` to the chunk's home machine and execute its actions.
    fn home_event(&mut self, ctx: &mut Ctx, aid: ArrayId, chunk: ChunkId, ev: HomeEvent<WaitCell>) {
        self.home_event_with_data(ctx, aid, chunk, ev, None);
    }

    /// [`RuntimeThread::home_event`] with an optional flush payload for
    /// [`HomeAction::ApplyFlushData`] to consume.
    fn home_event_with_data(
        &mut self,
        ctx: &mut Ctx,
        aid: ArrayId,
        chunk: ChunkId,
        ev: HomeEvent<WaitCell>,
        mut flush_data: Option<Vec<u64>>,
    ) {
        let arr = self.shared.array(aid);
        // The machine mutex is released before any action executes: actions
        // may charge time, yield, or re-enter `home_event` via a drain that
        // completes immediately.
        let actions = {
            let mut hm = arr.per_node[self.node].home[chunk as usize].lock();
            hm.on_event(ctx.now(), self.shared.cfg.grant_grace_ns, ev)
        };
        for act in actions {
            self.run_home_action(ctx, &arr, chunk, act, &mut flush_data);
        }
    }

    fn run_home_action(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        act: HomeAction<WaitCell>,
        flush_data: &mut Option<Vec<u64>>,
    ) {
        match act {
            HomeAction::ChargeDirUpdate => ctx.charge(self.shared.cfg.cost.dir_update_ns),
            HomeAction::Wake(w) => w.notify(ctx),
            HomeAction::SendFill {
                to,
                dst_off,
                exclusive,
            } => self.send_fill(ctx, arr, chunk, to, dst_off, exclusive),
            HomeAction::SendGrant { to, op } => {
                self.comm
                    .send(ctx, to, arr.id, Rpc::GrantOperated { chunk, op });
            }
            HomeAction::SendInvalidate { to } => {
                self.comm
                    .send(ctx, to, arr.id, Rpc::InvalidateReq { chunk });
            }
            HomeAction::SendRecallDirty { to } => {
                self.comm.send(ctx, to, arr.id, Rpc::RecallDirty { chunk });
            }
            HomeAction::SendDowngrade { to } => {
                self.comm
                    .send(ctx, to, arr.id, Rpc::DowngradeDirty { chunk });
            }
            HomeAction::SendRecallOperated { to, op } => {
                self.comm
                    .send(ctx, to, arr.id, Rpc::RecallOperated { chunk, op });
            }
            HomeAction::ApplyFlushData { op } => {
                let data = flush_data.take().expect("flush event carried no data");
                self.apply_flush_data(ctx, arr, chunk, op, &data);
            }
            HomeAction::SetHomeLocal { state, tag } => {
                arr.per_node[self.node].dentries[chunk as usize].promote_to(state, tag);
            }
            HomeAction::StartHomeDrain { target, tag } => {
                self.start_drain(arr, chunk, target, tag, Cont::Home);
            }
            HomeAction::ScheduleRetry { at } => {
                let mb = self.shared.rt_mailbox(self.node, arr.id, chunk).clone();
                mb.send_at(
                    ctx,
                    RtMsg::Retry {
                        array: arr.id,
                        chunk,
                    },
                    at,
                );
            }
            HomeAction::Trace(t) => self.transition(ctx, arr.id, chunk, &t),
            HomeAction::Count(c) => self.count(c),
            HomeAction::PersistChunk { seq } => {
                // Persist-before-ack (DESIGN.md §14): append the chunk's
                // freshly updated home image to the durable log, then feed
                // the completion straight back — the machine is parked in
                // AwaitPersist and resumes the acknowledgement only now.
                // Under the Writethrough policy the record is also fsynced
                // here; under Writeback it reaches disk at the next batch
                // point (eviction scan or shutdown).
                let store = self.shared.stores[self.node]
                    .as_ref()
                    .expect("durable home machine without a chunk store");
                let words = arr.layout.chunk_size();
                let off = arr.chunk_off(chunk as usize);
                let data = arr.subarrays[self.node].read_vec(off, words);
                ctx.charge(self.shared.cfg.cost.memcpy(words));
                store
                    .persist(arr.id, chunk, seq, &data)
                    .expect("durable chunk store persist failed");
                // Epoch-close compaction trigger (DESIGN.md §14): the
                // persist counter just advanced, so poll the cheap
                // threshold check. Home-heavy nodes may never run an
                // eviction scan, so this is the trigger that actually
                // fires for them; `maybe_checkpoint` is a no-op unless
                // `checkpoint_every_persists` is due.
                store
                    .maybe_checkpoint()
                    .expect("durable chunk store checkpoint failed");
                self.home_event(ctx, arr.id, chunk, HomeEvent::PersistDone { seq });
            }
            HomeAction::TransferChunk { to, mig_epoch } => {
                // The image travels exactly like a fill: one-sided WRITE
                // into the target's (full-size, elastic) subarray slot,
                // then the MigrateData notification.
                let words = arr.layout.chunk_size();
                let off = arr.chunk_off(chunk as usize);
                let data = arr.subarrays[self.node].read_vec(off, words);
                ctx.charge(self.shared.cfg.cost.memcpy(words));
                self.comm.write_send(
                    ctx,
                    to,
                    &arr.subarrays[to],
                    off,
                    data,
                    arr.id,
                    Rpc::MigrateData {
                        chunk,
                        epoch: mig_epoch,
                    },
                );
            }
            HomeAction::SendMigrateAck { to, mig_epoch } => {
                self.comm.send(
                    ctx,
                    to,
                    arr.id,
                    Rpc::MigrateAck {
                        chunk,
                        epoch: mig_epoch,
                    },
                );
            }
            HomeAction::SendMigrateCommit { to, mig_epoch } => {
                self.comm.send(
                    ctx,
                    to,
                    arr.id,
                    Rpc::MigrateCommit {
                        chunk,
                        epoch: mig_epoch,
                    },
                );
            }
            HomeAction::DepartChunk { to, mig_epoch } => {
                arr.note_home(self.node, chunk as usize, to, mig_epoch);
                let d = &arr.per_node[self.node].dentries[chunk as usize];
                d.promote_to(LocalState::Invalid, crate::protocol::NOTAG);
                d.set_line(LINE_NONE);
                self.broadcast_home_moved(ctx, arr, chunk, to, mig_epoch);
            }
            HomeAction::AdoptChunk { mig_epoch } => {
                arr.note_home(self.node, chunk as usize, self.node, mig_epoch);
                let d = &arr.per_node[self.node].dentries[chunk as usize];
                d.set_line(LINE_HOME);
                d.promote_to(LocalState::Exclusive, crate::protocol::NOTAG);
                // Re-broadcast even though the source already did: if the
                // source died right after committing, its redirects died
                // with it; the map flip is a fetch_max, so duplicates are
                // no-ops.
                self.broadcast_home_moved(ctx, arr, chunk, self.node, mig_epoch);
            }
            HomeAction::ForwardRequest {
                to,
                node,
                dst_off,
                kind,
            } => {
                let (kind_u8, op) = match kind {
                    Kind::Read => (0u8, 0u32),
                    Kind::Write => (1, 0),
                    Kind::Operate(op) => (2, op),
                };
                self.comm.send(
                    ctx,
                    to,
                    arr.id,
                    Rpc::MigrateForward {
                        chunk,
                        requester: node,
                        dst_off,
                        kind: kind_u8,
                        op,
                    },
                );
                // Redirect the requester so its next miss goes straight to
                // the new home instead of bouncing off us again.
                let epoch = arr.home_epoch_on(self.node, chunk as usize);
                self.comm.send(
                    ctx,
                    node,
                    arr.id,
                    Rpc::HomeMoved {
                        chunk,
                        new_home: to,
                        epoch,
                    },
                );
            }
        }
    }

    /// Tell every live peer the chunk's home moved (stale-home redirect).
    fn broadcast_home_moved(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        new_home: NodeId,
        epoch: u64,
    ) {
        for peer in 0..self.shared.cfg.nodes {
            if peer == self.node || self.shared.is_peer_down(self.node, peer) {
                continue;
            }
            self.comm.send(
                ctx,
                peer,
                arr.id,
                Rpc::HomeMoved {
                    chunk,
                    new_home,
                    epoch,
                },
            );
        }
    }

    /// Reduce a remote node's combined operands into the home subarray.
    /// Concurrent local applies CAS into the same words, so the reduction
    /// CASes too.
    fn apply_flush_data(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        op: u32,
        data: &[u64],
    ) {
        let words = arr.layout.chunk_size();
        debug_assert_eq!(data.len(), words);
        let off = arr.chunk_off(chunk as usize);
        let sub = &arr.subarrays[self.node];
        let reg = &self.shared.registry;
        let opid = OpId(op);
        let identity = reg.identity(opid);
        let cost = &self.shared.cfg.cost;
        let mut applied = 0u64;
        for (i, &operand) in data.iter().enumerate() {
            if operand == identity {
                continue; // common case: untouched element
            }
            applied += 1;
            loop {
                let cur = sub.load(off + i);
                let new = reg.combine(opid, cur, operand);
                if sub.compare_exchange(off + i, cur, new).is_ok() {
                    break;
                }
            }
        }
        ctx.charge(cost.memcpy(words) + applied * cost.op_apply_ns);
    }

    /// RDMA-write the chunk's data into the requester's cacheline and notify.
    fn send_fill(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        node: NodeId,
        dst_off: u64,
        exclusive: bool,
    ) {
        let words = arr.layout.chunk_size();
        let off = arr.chunk_off(chunk as usize);
        let data = arr.subarrays[self.node].read_vec(off, words);
        let rpc = if exclusive {
            Rpc::FillExclusive { chunk }
        } else {
            Rpc::FillShared { chunk }
        };
        self.comm.write_send(
            ctx,
            node,
            &self.shared.cache_regions[node],
            dst_off as usize,
            data,
            arr.id,
            rpc,
        );
    }

    // ------------------------------------------------------------------
    // Cache-machine executor
    // ------------------------------------------------------------------

    /// Snapshot a chunk's dentry for the cache machine.
    fn cache_view(&self, arr: &ArrayShared, chunk: ChunkId) -> CacheView {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        CacheView {
            state: d.state(),
            op_tag: d.op_tag(),
            line: d.line(),
            draining: d.delay_set(),
        }
    }

    /// Feed `ev` to the cache machine over a fresh dentry snapshot and
    /// execute its actions. `requester` carries the wait-cell of the local
    /// requester for [`CacheEvent::Request`] events (`None` otherwise).
    fn cache_event(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        ev: CacheEvent,
        requester: Option<WaitCell>,
    ) {
        let view = self.cache_view(arr, chunk);
        let actions = CacheMachine::on_event(&view, ev);
        self.run_cache_actions(ctx, arr, chunk, actions, requester);
    }

    fn run_cache_actions(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        actions: Vec<CacheAction>,
        mut requester: Option<WaitCell>,
    ) {
        let home = arr.home_on(self.node, chunk as usize);
        for act in actions {
            let d = &arr.per_node[self.node].dentries[chunk as usize];
            match act {
                CacheAction::QueueWaiter => {
                    d.push_waiter(requester.take().expect("no requester to queue"));
                }
                CacheAction::WakeRequester => {
                    requester.take().expect("no requester to wake").notify(ctx);
                }
                CacheAction::WakeAllWaiters => d.wake_waiters(ctx),
                CacheAction::BeginDrain { target, tag, after } => {
                    self.start_drain(arr, chunk, target, tag, Cont::Cache(after));
                }
                CacheAction::AllocLine { kind } => {
                    let line = self.alloc_line(ctx, arr, chunk);
                    let view = self.cache_view(arr, chunk);
                    let acts =
                        CacheMachine::on_event(&view, CacheEvent::LineAllocated { line, kind });
                    self.run_cache_actions(ctx, arr, chunk, acts, None);
                }
                CacheAction::SetLine { line } => d.set_line(line),
                CacheAction::ReleaseLine { line } => {
                    d.set_line(LINE_NONE);
                    if line != LINE_NONE && line != LINE_HOME {
                        self.cache.free(line);
                    }
                }
                CacheAction::SetTransient { state } => d.set_transient(state),
                CacheAction::Promote { state, tag } => d.promote_to(state, tag),
                CacheAction::InitOperandBuffer { line, op } => {
                    let words = arr.layout.chunk_size();
                    let identity = self.shared.registry.identity(OpId(op));
                    self.shared.cache_regions[self.node].fill(self.line_off(line), words, identity);
                    ctx.charge(self.shared.cfg.cost.memcpy(words));
                }
                CacheAction::SendEvictNotice => {
                    self.comm
                        .send(ctx, home, arr.id, Rpc::EvictNotice { chunk });
                }
                CacheAction::SendInvalidateAck { to } => {
                    self.comm
                        .send(ctx, to, arr.id, Rpc::InvalidateAck { chunk });
                }
                CacheAction::SendWriteback {
                    line,
                    downgrade,
                    release,
                } => {
                    let words = arr.layout.chunk_size();
                    let data = self.read_line(ctx, line, words);
                    if release {
                        d.set_line(LINE_NONE);
                        self.cache.free(line);
                    }
                    let off = arr.chunk_off(chunk as usize);
                    self.comm.write_send(
                        ctx,
                        home,
                        &arr.subarrays[home],
                        off,
                        data,
                        arr.id,
                        Rpc::WritebackNotice { chunk, downgrade },
                    );
                }
                CacheAction::SendFlush { line, op, release } => {
                    let words = arr.layout.chunk_size();
                    let data = self.read_line(ctx, line, words);
                    if release {
                        d.set_line(LINE_NONE);
                        self.cache.free(line);
                    }
                    self.comm
                        .send(ctx, home, arr.id, Rpc::OperandFlush { chunk, op, data });
                }
                CacheAction::SendUpgrade { line, kind } => {
                    let dst_off = self.line_off(line) as u64;
                    let rpc = match kind {
                        Kind::Read => Rpc::ReadReq { chunk, dst_off },
                        Kind::Write => Rpc::WriteReq { chunk, dst_off },
                        Kind::Operate(op) => Rpc::OperateReq { chunk, op },
                    };
                    self.comm.send(ctx, home, arr.id, rpc);
                }
                CacheAction::PrefetchHint => {
                    // Prefetch only when the miss continues a sequential
                    // pattern — random access (e.g. hash probing) would only
                    // churn the cache with doomed Shared copies. A globally
                    // sequential scan reaches each runtime thread as a
                    // stride: this thread owns every `runtime_threads`-th
                    // chunk, so the previous miss it saw is that far back.
                    let stride = self.shared.cfg.runtime_threads as ChunkId;
                    let sequential = self.last_miss == Some((arr.id, chunk.wrapping_sub(stride)))
                        || self.last_miss == Some((arr.id, chunk));
                    self.last_miss = Some((arr.id, chunk));
                    if sequential {
                        self.prefetch(ctx, arr, chunk);
                    }
                }
                CacheAction::Trace(t) => self.transition(ctx, arr.id, chunk, &t),
                CacheAction::Count(c) => self.count(c),
            }
        }
        debug_assert!(requester.is_none(), "machine left a requester unhandled");
    }

    fn read_line(&self, ctx: &mut Ctx, line: u32, words: usize) -> Vec<u64> {
        let off = self.line_off(line);
        ctx.charge(self.shared.cfg.cost.memcpy(words));
        self.shared.cache_regions[self.node].read_vec(off, words)
    }

    // ------------------------------------------------------------------
    // Local requests (interface layer -> runtime, Figure 2)
    // ------------------------------------------------------------------

    fn handle_local(&mut self, ctx: &mut Ctx, req: LocalReq) {
        let arr = self.shared.array(req.array);
        match req.kind {
            LocalKind::Read { chunk } => {
                self.local_data_req(ctx, &arr, chunk, Kind::Read, req.waiter)
            }
            LocalKind::Write { chunk } => {
                self.local_data_req(ctx, &arr, chunk, Kind::Write, req.waiter)
            }
            LocalKind::Operate { chunk, op } => {
                self.local_data_req(ctx, &arr, chunk, Kind::Operate(op), req.waiter)
            }
            LocalKind::LockAcquire { index, kind } => {
                self.local_lock_acquire(ctx, &arr, index, kind, req.waiter)
            }
            LocalKind::LockRelease { index, kind } => {
                self.local_lock_release(ctx, &arr, index, kind, req.waiter)
            }
        }
    }

    fn rights_satisfied(d: &Dentry, kind: Kind) -> bool {
        let s = d.state();
        match kind {
            Kind::Read => s.readable(),
            Kind::Write => s.writable(),
            Kind::Operate(op) => {
                s == LocalState::Exclusive || (s == LocalState::Operated && d.op_tag() == op)
            }
        }
    }

    fn local_data_req(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        chunk: ChunkId,
        kind: Kind,
        waiter: WaitCell,
    ) {
        let d = &arr.per_node[self.node].dentries[chunk as usize];
        // Re-check: the state may have changed between the app thread's miss
        // and us dequeuing the request.
        if !d.delay_set() && Self::rights_satisfied(d, kind) {
            waiter.notify(ctx);
            return;
        }
        let home = arr.home_on(self.node, chunk as usize);
        if home == self.node {
            self.home_event(
                ctx,
                arr.id,
                chunk,
                HomeEvent::Request(Request {
                    source: Requester::Local(waiter),
                    kind,
                }),
            );
        } else {
            crate::trace::event(
                arr.id,
                chunk,
                self.node,
                ctx.now(),
                format_args!("CACHE_REQ state={:?} kind={:?}", d.state(), kind),
            );
            let drain_pending = self
                .deferred
                .iter()
                .any(|df| df.array == arr.id && df.chunk == chunk);
            let home_down = self.shared.is_peer_down(self.node, home);
            self.cache_event(
                ctx,
                arr,
                chunk,
                CacheEvent::Request {
                    kind,
                    home_down,
                    drain_pending,
                },
                Some(waiter),
            );
        }
    }

    /// Issue read prefetches for sequentially-next chunks (slow path only,
    /// §4.2 "Cache prefetch").
    fn prefetch(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId) {
        let k = self.shared.cfg.cache.prefetch_lines;
        if k == 0 {
            return;
        }
        let num_chunks = arr.layout.num_chunks() as ChunkId;
        for nc in chunk + 1..=(chunk + k as ChunkId) {
            if nc >= num_chunks {
                break;
            }
            if arr.home_on(self.node, nc as usize) == self.node {
                continue;
            }
            if self.shared.rt_index(arr.id, nc) != self.rt_idx {
                continue;
            }
            if self.cache.below_low() {
                break; // never force evictions on behalf of a prefetch
            }
            let d = &arr.per_node[self.node].dentries[nc as usize];
            if d.state() != LocalState::Invalid || d.delay_set() {
                continue;
            }
            let Some(line) = self.cache.alloc(arr.id, nc) else {
                break;
            };
            d.set_line(line);
            d.set_transient(LocalState::FillingShared);
            let dst_off = self.line_off(line) as u64;
            let home = arr.home_on(self.node, nc as usize);
            self.comm
                .send(ctx, home, arr.id, Rpc::ReadReq { chunk: nc, dst_off });
            NodeStats::bump(&self.stats().prefetches);
        }
    }

    // ------------------------------------------------------------------
    // Cache allocation & eviction (Figure 7)
    // ------------------------------------------------------------------

    fn alloc_line(&mut self, ctx: &mut Ctx, arr: &Arc<ArrayShared>, chunk: ChunkId) -> u32 {
        let mut spins: u64 = 0;
        loop {
            if self.cache.below_low() {
                self.reclaim(ctx);
            }
            if let Some(line) = self.cache.alloc(arr.id, chunk) {
                ctx.charge(self.shared.cfg.cost.cacheline_alloc_ns);
                return line;
            }
            self.reclaim(ctx);
            if self.cache.free_count() == 0 {
                // Everything is pinned or in flight; wait for references to
                // drop (bounded, to turn misuse into a diagnostic).
                ctx.spin_hint(200);
                self.poll_deferred();
                self.drain_ready(ctx);
                spins += 1;
                assert!(
                    spins < 5_000_000,
                    "cache exhausted on node {}: all {} lines pinned or in flight",
                    self.node,
                    self.cache.capacity()
                );
            }
        }
    }

    /// Scan this thread's cache region from its scanning pointer, evicting
    /// idle lines until the free count exceeds the high watermark. The
    /// *selection* (skip referenced / mid-transition lines) is executor
    /// policy; the per-state eviction protocol is the cache machine's.
    fn reclaim(&mut self, ctx: &mut Ctx) {
        let cap = self.cache.capacity();
        let mut scanned = 0;
        while self.cache.below_high() && scanned < cap {
            scanned += 1;
            ctx.charge(self.shared.cfg.cost.evict_scan_ns);
            let line = self.cache.scan_next();
            let Some((aid, c)) = self.cache.owner(line) else {
                continue;
            };
            let arr = self.shared.array(aid);
            let d = &arr.per_node[self.node].dentries[c as usize];
            if d.delay_set() || d.refcnt() > 0 {
                continue; // accessed or mid-transition: not evictable
            }
            self.cache_event(ctx, &arr, c, CacheEvent::Evict, None);
        }
        self.drain_ready(ctx);
        // Writeback durability batch point (DESIGN.md §14): the eviction
        // scan just pushed a burst of dirty images through the home
        // machines (and thus into the buffered log); flush them to disk in
        // one syscall instead of one per record. Writethrough syncs per
        // record in `persist`, so this is a no-op there; for `None` there
        // is no store at all.
        if let Some(store) = &self.shared.stores[self.node] {
            if matches!(
                self.shared.cfg.durability.policy,
                crate::store::DurabilityPolicy::Writeback
            ) {
                store.sync().expect("durable chunk store batch sync failed");
            }
            // Eviction-scan compaction boundary: the log is now synced (or
            // syncs per record under Writethrough), which is the cheapest
            // moment to fold it into a checkpoint and drop the covered
            // prefix. No-op unless the persist threshold is due.
            store
                .maybe_checkpoint()
                .expect("durable chunk store checkpoint failed");
        }
    }

    // ------------------------------------------------------------------
    // Remote protocol messages
    // ------------------------------------------------------------------

    fn handle_rpc(&mut self, ctx: &mut Ctx, src: NodeId, aid: ArrayId, rpc: Rpc) {
        // Fail-stop: once a peer is declared down its bookkeeping has been
        // settled by `handle_peer_down`; straggler messages from it (already
        // queued when the declaration landed) must not resurrect it.
        if src != self.node && self.shared.is_peer_down(self.node, src) {
            return;
        }
        let arr = self.shared.array(aid);
        match rpc {
            // Home side: directory machine events.
            Rpc::ReadReq { chunk, dst_off } => self.home_event(
                ctx,
                aid,
                chunk,
                HomeEvent::Request(Request {
                    source: Requester::Remote { node: src, dst_off },
                    kind: Kind::Read,
                }),
            ),
            Rpc::WriteReq { chunk, dst_off } => self.home_event(
                ctx,
                aid,
                chunk,
                HomeEvent::Request(Request {
                    source: Requester::Remote { node: src, dst_off },
                    kind: Kind::Write,
                }),
            ),
            Rpc::OperateReq { chunk, op } => self.home_event(
                ctx,
                aid,
                chunk,
                HomeEvent::Request(Request {
                    source: Requester::Remote {
                        node: src,
                        dst_off: 0,
                    },
                    kind: Kind::Operate(op),
                }),
            ),
            Rpc::EvictNotice { chunk } => {
                self.home_event(ctx, aid, chunk, HomeEvent::EvictNotice { from: src })
            }
            Rpc::WritebackNotice { chunk, downgrade } => self.home_event(
                ctx,
                aid,
                chunk,
                HomeEvent::Writeback {
                    from: src,
                    downgrade,
                },
            ),
            Rpc::OperandFlush { chunk, op, data } => {
                let has_data = !data.is_empty();
                self.home_event_with_data(
                    ctx,
                    aid,
                    chunk,
                    HomeEvent::Flush {
                        from: src,
                        op,
                        has_data,
                    },
                    has_data.then_some(data),
                );
            }
            Rpc::InvalidateAck { chunk } => {
                self.home_event(ctx, aid, chunk, HomeEvent::InvAck { from: src })
            }

            // Chunk migration (DESIGN.md §15). Data for MigrateData already
            // landed one-sided in our subarray slot before this notification
            // (RC FIFO ordering, same guarantee fills rely on).
            Rpc::MigrateData { chunk, epoch } => self.home_event(
                ctx,
                aid,
                chunk,
                HomeEvent::MigrateData {
                    from: src,
                    mig_epoch: epoch,
                },
            ),
            Rpc::MigrateAck { chunk, epoch } => self.home_event(
                ctx,
                aid,
                chunk,
                HomeEvent::MigrateAck {
                    from: src,
                    mig_epoch: epoch,
                },
            ),
            Rpc::MigrateCommit { chunk, epoch } => self.home_event(
                ctx,
                aid,
                chunk,
                HomeEvent::MigrateCommit {
                    from: src,
                    mig_epoch: epoch,
                },
            ),
            Rpc::HomeMoved {
                chunk,
                new_home,
                epoch,
            } => {
                if arr.elastic {
                    let changed = arr.note_home(self.node, chunk as usize, new_home, epoch);
                    if changed && new_home != self.node {
                        // Stale grants from the departed home are unsound
                        // against the new (cold) directory — reset, exactly
                        // like after a home restart.
                        self.cache_event(ctx, &arr, chunk, CacheEvent::HomeMoved, None);
                    }
                }
            }
            Rpc::MigrateForward {
                chunk,
                requester,
                dst_off,
                kind,
                op,
            } => {
                let kind = match kind {
                    0 => Kind::Read,
                    1 => Kind::Write,
                    _ => Kind::Operate(op),
                };
                self.home_event(
                    ctx,
                    aid,
                    chunk,
                    HomeEvent::Request(Request {
                        source: Requester::Remote {
                            node: requester,
                            dst_off,
                        },
                        kind,
                    }),
                );
            }

            // Requester side: cache machine events.
            Rpc::FillShared { chunk } => self.cache_event(
                ctx,
                &arr,
                chunk,
                CacheEvent::FillDone {
                    granted: LocalState::Shared,
                },
                None,
            ),
            Rpc::FillExclusive { chunk } => self.cache_event(
                ctx,
                &arr,
                chunk,
                CacheEvent::FillDone {
                    granted: LocalState::Exclusive,
                },
                None,
            ),
            Rpc::GrantOperated { chunk, op } => {
                self.cache_event(ctx, &arr, chunk, CacheEvent::GrantDone { op }, None)
            }
            Rpc::InvalidateReq { chunk } => {
                self.cache_event(ctx, &arr, chunk, CacheEvent::Invalidate { from: src }, None)
            }
            Rpc::RecallDirty { chunk } => {
                self.cache_event(ctx, &arr, chunk, CacheEvent::RecallDirty, None)
            }
            Rpc::DowngradeDirty { chunk } => {
                self.cache_event(ctx, &arr, chunk, CacheEvent::DowngradeDirty, None)
            }
            Rpc::RecallOperated { chunk, op } => {
                self.cache_event(ctx, &arr, chunk, CacheEvent::RecallOperated { op }, None)
            }

            // Distributed locks (orthogonal to the coherence protocol).
            Rpc::LockAcquire { id, kind, .. } => self.rpc_lock_acquire(ctx, &arr, id, kind, src),
            Rpc::LockGrant { id, kind, .. } => self.rpc_lock_grant(ctx, &arr, id, kind),
            Rpc::LockRelease { id, kind, .. } => self.rpc_lock_release(ctx, &arr, id, kind, src),
        }
    }

    // ------------------------------------------------------------------
    // Peer failure (fail-stop recovery)
    // ------------------------------------------------------------------

    /// The node's membership view confirmed `dead` unreachable (quorum-
    /// backed, DESIGN.md §12). Settle every piece of protocol state this
    /// runtime thread owns that involves the dead peer so nothing waits on
    /// it forever:
    ///
    /// * requester side (chunks homed on `dead`): the cache machine aborts
    ///   in-flight fills and wakes their waiters — the application observes
    ///   `NodeUnavailable`. Valid cached copies are *kept*: they remain
    ///   readable/writable locally (graceful degradation; writebacks to the
    ///   dead home are silently dropped).
    /// * home side (chunks homed here): the home machine removes `dead` from
    ///   sharer sets and transient wait-sets, reclaims Dirty ownership it
    ///   held (its un-written-back data is lost — fail-stop), drops its
    ///   queued requests, and resumes the directory engine.
    /// * locks: this node's own `LockTable` reclaims every lock the dead
    ///   node held, drops its queued requests and re-grants to surviving
    ///   waiters (`reclaim_peer_locks`); local waiters for locks homed *on*
    ///   `dead` are woken so they re-check and error out.
    fn handle_peer_down(&mut self, ctx: &mut Ctx, dead: NodeId, epoch: u64) {
        // Epoch fence: recovery runs only for the declaration the membership
        // view actually stamped. A mismatch means the event is stale — the
        // view has moved on (or never confirmed this death) — and replaying
        // recovery for it could clobber state a re-admitted peer still owns.
        if self.shared.membership[self.node].death_epoch(dead) != Some(epoch) {
            return;
        }
        let arrays: Vec<Arc<ArrayShared>> = self.shared.arrays.read().clone();
        for arr in &arrays {
            for c in 0..arr.layout.num_chunks() as ChunkId {
                if self.shared.rt_index(arr.id, c) != self.rt_idx {
                    continue;
                }
                let home = arr.home_on(self.node, c as usize);
                if home == dead {
                    self.cache_event(ctx, arr, c, CacheEvent::HomeDown, None);
                } else if home == self.node {
                    self.home_event(
                        ctx,
                        arr.id,
                        c,
                        HomeEvent::PeerDown {
                            dead,
                            view_epoch: epoch,
                        },
                    );
                }
            }
            // Break the locks the dead node held in our table and hand them
            // to the next waiters in line.
            self.reclaim_peer_locks(ctx, arr, dead);
            // Wake local waiters for locks homed on the dead node. Drained
            // under the mutex, notified after releasing it — in sorted key
            // order, so recovery wake order is deterministic and a crash
            // run replays bit-identically.
            let woken: Vec<WaitCell> = {
                let mut lw = arr.per_node[self.node].lock_waiters.lock();
                let mut keys: Vec<(u64, LockKind)> = lw
                    .keys()
                    .filter(|(id, _)| arr.layout.home_of(*id as usize) == dead)
                    .copied()
                    .collect();
                keys.sort_unstable();
                keys.into_iter()
                    .flat_map(|k| lw.remove(&k).unwrap_or_default())
                    .collect()
            };
            for w in woken {
                w.notify(ctx);
            }
        }
    }

    /// The membership view re-admitted `node` as a *restarted* identity
    /// (`MembershipView::restart`, DESIGN.md §14): the peer crashed, was
    /// confirmed dead, recovered whatever its durable chunk store held, and
    /// is rejoining cold. Settle the protocol state this runtime thread
    /// owns so the new incarnation starts from a clean slate:
    ///
    /// * requester side (chunks homed on the restarted node): the cache
    ///   machine releases every cached line and resets to Invalid
    ///   (`CacheEvent::HomeRestarted`) — rights granted by the *old*
    ///   incarnation are void, the restarted home's directory has no record
    ///   of them. Subsequent accesses re-fill from the recovered image.
    /// * home side (chunks homed here): the home machine un-fences the
    ///   identity (`HomeEvent::PeerRestarted`) so the new incarnation's
    ///   requests are served again; the epoch fence rejects stale replays.
    fn handle_peer_restart(&mut self, ctx: &mut Ctx, node: NodeId, epoch: u64) {
        // Fence: only act if the local view actually shows the peer alive
        // again. A stale restart message racing a *newer* death declaration
        // must not resurrect protocol state for a corpse.
        if self.shared.membership[self.node].is_dead(node) {
            return;
        }
        let arrays: Vec<Arc<ArrayShared>> = self.shared.arrays.read().clone();
        for arr in &arrays {
            for c in 0..arr.layout.num_chunks() as ChunkId {
                if self.shared.rt_index(arr.id, c) != self.rt_idx {
                    continue;
                }
                let home = arr.home_on(self.node, c as usize);
                if home == node {
                    self.cache_event(ctx, arr, c, CacheEvent::HomeRestarted, None);
                } else if home == self.node {
                    self.home_event(
                        ctx,
                        arr.id,
                        c,
                        HomeEvent::PeerRestarted {
                            node,
                            view_epoch: epoch,
                        },
                    );
                }
            }
        }
    }
}
