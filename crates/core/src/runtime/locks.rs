//! Distributed element-lock handling (§4.5), split out of the runtime event
//! loop. Locks are orthogonal to the coherence protocol: a lock's home node
//! arbitrates fairness in its `LockTable`; requesters park waiters in their
//! `lock_waiters` map until a `LockGrant` arrives. No cacheline or directory
//! state is involved.

use std::sync::Arc;

use dsim::{Ctx, WaitCell};
use rdma_fabric::NodeId;

use crate::lock::LockSource;
use crate::msg::{ChunkId, LockKind, Rpc};
use crate::shared::ArrayShared;
use crate::stats::NodeStats;

use super::RuntimeThread;

impl RuntimeThread {
    fn deliver_grant(
        &mut self,
        ctx: &mut Ctx,
        arr: &ArrayShared,
        id: u64,
        kind: LockKind,
        src: LockSource,
    ) {
        NodeStats::bump(&self.stats().locks_granted);
        match src {
            LockSource::Local(w) => w.notify(ctx),
            LockSource::Remote(n) => {
                let chunk = (id as usize / arr.layout.chunk_size()) as ChunkId;
                self.comm
                    .send(ctx, n, arr.id, Rpc::LockGrant { chunk, id, kind });
            }
        }
    }

    pub(super) fn local_lock_acquire(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        index: u64,
        kind: LockKind,
        waiter: WaitCell,
    ) {
        let home = arr.layout.home_of(index as usize);
        if home == self.node {
            let granted = arr.per_node[self.node].lock_table.lock().acquire(
                index,
                kind,
                LockSource::Local(waiter),
            );
            if let Some(src) = granted {
                self.deliver_grant(ctx, arr, index, kind, src);
            }
        } else if self.shared.is_peer_down(self.node, home) {
            // The lock's home is dead: wake the waiter so the application
            // thread re-checks and observes `NodeUnavailable`.
            waiter.notify(ctx);
        } else {
            arr.per_node[self.node]
                .lock_waiters
                .lock()
                .entry((index, kind))
                .or_default()
                .push_back(waiter);
            let chunk = (index as usize / arr.layout.chunk_size()) as ChunkId;
            self.comm.send(
                ctx,
                home,
                arr.id,
                Rpc::LockAcquire {
                    chunk,
                    id: index,
                    kind,
                },
            );
        }
    }

    pub(super) fn local_lock_release(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        index: u64,
        kind: LockKind,
        waiter: WaitCell,
    ) {
        let home = arr.layout.home_of(index as usize);
        if home == self.node {
            let woken = arr.per_node[self.node]
                .lock_table
                .lock()
                .release(index, kind);
            for (src, k) in woken {
                self.deliver_grant(ctx, arr, index, k, src);
            }
        } else {
            let chunk = (index as usize / arr.layout.chunk_size()) as ChunkId;
            self.comm.send(
                ctx,
                home,
                arr.id,
                Rpc::LockRelease {
                    chunk,
                    id: index,
                    kind,
                },
            );
        }
        // Releases complete locally; the wire release is one-way.
        waiter.notify(ctx);
    }

    pub(super) fn rpc_lock_acquire(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        id: u64,
        kind: LockKind,
        src: NodeId,
    ) {
        let granted =
            arr.per_node[self.node]
                .lock_table
                .lock()
                .acquire(id, kind, LockSource::Remote(src));
        if let Some(s) = granted {
            self.deliver_grant(ctx, arr, id, kind, s);
        }
    }

    pub(super) fn rpc_lock_release(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        id: u64,
        kind: LockKind,
    ) {
        let woken = arr.per_node[self.node].lock_table.lock().release(id, kind);
        for (src, k) in woken {
            self.deliver_grant(ctx, arr, id, k, src);
        }
    }

    pub(super) fn rpc_lock_grant(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        id: u64,
        kind: LockKind,
    ) {
        let popped = {
            let mut lw = arr.per_node[self.node].lock_waiters.lock();
            let popped = lw.get_mut(&(id, kind)).and_then(|q| q.pop_front());
            if lw.get(&(id, kind)).is_some_and(|q| q.is_empty()) {
                lw.remove(&(id, kind));
            }
            popped
        };
        match popped {
            Some(w) => w.notify(ctx),
            None => self.lock_grant_invariant_violated(arr, id, kind),
        }
    }

    /// A `LockGrant` arrived for an element no local thread is waiting on.
    /// This is a protocol-invariant violation (grants are only ever sent in
    /// response to an acquire we registered a waiter for, on a FIFO link):
    /// capture everything a debugger would want and poison the cluster —
    /// `try_*` APIs surface it as `DArrayError::ProtocolInvariant` — instead
    /// of aborting the process from inside a runtime thread.
    #[cold]
    #[inline(never)]
    fn lock_grant_invariant_violated(&self, arr: &ArrayShared, id: u64, kind: LockKind) {
        let chunk = id as usize / arr.layout.chunk_size();
        let home = arr.layout.home_of(id as usize);
        let waiting: Vec<(u64, LockKind, usize)> = arr.per_node[self.node]
            .lock_waiters
            .lock()
            .iter()
            .map(|((i, k), q)| (*i, *k, q.len()))
            .collect();
        let (state, transient, pending) = {
            let hm = arr.per_node[home].home[chunk].lock();
            (
                format!("{:?}", hm.state()),
                hm.transient().name(),
                hm.pending_len(),
            )
        };
        self.shared.protocol_fault.record(format!(
            "node {} (rt {}) received LockGrant for element {id} kind {kind:?} of array {} with \
             no registered waiter; chunk {chunk} homed on node {home}; home directory state \
             {state} transient {transient} with {pending} pending request(s); local waiters \
             registered: {waiting:?}",
            self.node, self.rt_idx, arr.id,
        ));
    }
}
