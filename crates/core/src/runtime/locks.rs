//! Distributed element-lock handling (§4.5), split out of the runtime event
//! loop. Locks are orthogonal to the coherence protocol: a lock's home node
//! arbitrates fairness in its `LockTable`; requesters park waiters in their
//! `lock_waiters` map until a `LockGrant` arrives. No cacheline or directory
//! state is involved.
//!
//! The table itself is sans-I/O (`crate::protocol::locks`); this file is the
//! executor glue that turns grants into `LockGrant` messages or wait-cell
//! notifications, and drives `forget_peer` when a peer is declared dead.

use std::collections::VecDeque;
use std::sync::Arc;

use dsim::{Ctx, WaitCell};
use rdma_fabric::NodeId;

use crate::msg::{ChunkId, LockKind, Rpc};
use crate::protocol::locks::LockSource;
use crate::shared::ArrayShared;
use crate::stats::NodeStats;

use super::RuntimeThread;

impl RuntimeThread {
    fn deliver_grant(
        &mut self,
        ctx: &mut Ctx,
        arr: &ArrayShared,
        id: u64,
        kind: LockKind,
        src: LockSource<WaitCell>,
    ) {
        // A grant can cascade: if the grantee was declared dead after it
        // queued, the lock is released straight back and may wake further
        // waiters (FIFO order preserved).
        let mut pending = VecDeque::new();
        pending.push_back((id, kind, src));
        while let Some((id, kind, src)) = pending.pop_front() {
            match src {
                LockSource::Local(w) => {
                    NodeStats::bump(&self.stats().locks_granted);
                    w.notify(ctx);
                }
                LockSource::Remote(n) if !self.shared.is_peer_down(self.node, n) => {
                    NodeStats::bump(&self.stats().locks_granted);
                    let chunk = (id as usize / arr.layout.chunk_size()) as ChunkId;
                    self.comm
                        .send(ctx, n, arr.id, Rpc::LockGrant { chunk, id, kind });
                }
                LockSource::Remote(n) => {
                    // Grantee died before the grant left this node: take the
                    // lock back so survivors are not blocked on a corpse.
                    NodeStats::bump(&self.stats().orphaned_locks_reclaimed);
                    let woken =
                        arr.per_node[self.node]
                            .lock_table
                            .lock()
                            .release(id, kind, Some(n));
                    pending.extend(woken.into_iter().map(|(s, k)| (id, k, s)));
                }
            }
        }
    }

    pub(super) fn local_lock_acquire(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        index: u64,
        kind: LockKind,
        waiter: WaitCell,
    ) {
        let home = arr.layout.home_of(index as usize);
        if home == self.node {
            let granted = arr.per_node[self.node].lock_table.lock().acquire(
                index,
                kind,
                LockSource::Local(waiter),
            );
            if let Some(src) = granted {
                self.deliver_grant(ctx, arr, index, kind, src);
            }
        } else if self.shared.is_peer_down(self.node, home) {
            // The lock's home is dead: wake the waiter so the application
            // thread re-checks and observes `NodeUnavailable`.
            waiter.notify(ctx);
        } else {
            arr.per_node[self.node]
                .lock_waiters
                .lock()
                .entry((index, kind))
                .or_default()
                .push_back(waiter);
            let chunk = (index as usize / arr.layout.chunk_size()) as ChunkId;
            self.comm.send(
                ctx,
                home,
                arr.id,
                Rpc::LockAcquire {
                    chunk,
                    id: index,
                    kind,
                },
            );
        }
    }

    pub(super) fn local_lock_release(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        index: u64,
        kind: LockKind,
        waiter: WaitCell,
    ) {
        let home = arr.layout.home_of(index as usize);
        if home == self.node {
            let woken = arr.per_node[self.node]
                .lock_table
                .lock()
                .release(index, kind, None);
            for (src, k) in woken {
                self.deliver_grant(ctx, arr, index, k, src);
            }
        } else {
            let chunk = (index as usize / arr.layout.chunk_size()) as ChunkId;
            self.comm.send(
                ctx,
                home,
                arr.id,
                Rpc::LockRelease {
                    chunk,
                    id: index,
                    kind,
                },
            );
        }
        // Releases complete locally; the wire release is one-way.
        waiter.notify(ctx);
    }

    pub(super) fn rpc_lock_acquire(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        id: u64,
        kind: LockKind,
        src: NodeId,
    ) {
        let granted =
            arr.per_node[self.node]
                .lock_table
                .lock()
                .acquire(id, kind, LockSource::Remote(src));
        if let Some(s) = granted {
            self.deliver_grant(ctx, arr, id, kind, s);
        }
    }

    pub(super) fn rpc_lock_release(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        id: u64,
        kind: LockKind,
        src: NodeId,
    ) {
        let woken = arr.per_node[self.node]
            .lock_table
            .lock()
            .release(id, kind, Some(src));
        for (src, k) in woken {
            self.deliver_grant(ctx, arr, id, k, src);
        }
    }

    pub(super) fn rpc_lock_grant(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        id: u64,
        kind: LockKind,
    ) {
        let popped = {
            let mut lw = arr.per_node[self.node].lock_waiters.lock();
            let popped = lw.get_mut(&(id, kind)).and_then(|q| q.pop_front());
            if lw.get(&(id, kind)).is_some_and(|q| q.is_empty()) {
                lw.remove(&(id, kind));
            }
            popped
        };
        match popped {
            Some(w) => w.notify(ctx),
            None => self.lock_grant_invariant_violated(arr, id, kind),
        }
    }

    /// A peer was declared dead: reclaim every lock it held in this node's
    /// table, drop its queued requests, and deliver the grants that unblock
    /// surviving waiters. Idempotent, so it is safe for every runtime thread
    /// of the node to run the sweep (the first to arrive does the work).
    pub(super) fn reclaim_peer_locks(
        &mut self,
        ctx: &mut Ctx,
        arr: &Arc<ArrayShared>,
        dead: NodeId,
    ) {
        let purge = arr.per_node[self.node].lock_table.lock().forget_peer(dead);
        for _ in 0..purge.reclaimed {
            NodeStats::bump(&self.stats().orphaned_locks_reclaimed);
        }
        for (id, src, k) in purge.granted {
            self.deliver_grant(ctx, arr, id, k, src);
        }
    }

    /// A `LockGrant` arrived for an element no local thread is waiting on.
    /// This is a protocol-invariant violation (grants are only ever sent in
    /// response to an acquire we registered a waiter for, on a FIFO link):
    /// capture everything a debugger would want and poison the cluster —
    /// `try_*` APIs surface it as `DArrayError::ProtocolInvariant` — instead
    /// of aborting the process from inside a runtime thread.
    #[cold]
    #[inline(never)]
    fn lock_grant_invariant_violated(&self, arr: &ArrayShared, id: u64, kind: LockKind) {
        let chunk = id as usize / arr.layout.chunk_size();
        let home = arr.layout.home_of(id as usize);
        let waiting: Vec<(u64, LockKind, usize)> = arr.per_node[self.node]
            .lock_waiters
            .lock()
            .iter()
            .map(|((i, k), q)| (*i, *k, q.len()))
            .collect();
        let (state, transient, pending) = {
            let hm = arr.per_node[home].home[chunk].lock();
            (
                format!("{:?}", hm.state()),
                hm.transient().name(),
                hm.pending_len(),
            )
        };
        self.shared.protocol_fault.record(format!(
            "node {} (rt {}) received LockGrant for element {id} kind {kind:?} of array {} with \
             no registered waiter; chunk {chunk} homed on node {home}; home directory state \
             {state} transient {transient} with {pending} pending request(s); local waiters \
             registered: {waiting:?}",
            self.node, self.rt_idx, arr.id,
        ));
    }
}
