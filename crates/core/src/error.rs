//! Structured errors: fallible configuration validation ([`ConfigError`])
//! and graceful degradation of operations that target unreachable nodes
//! ([`DArrayError`]).

use std::fmt;

use rdma_fabric::NodeId;

/// Errors surfaced by the fallible DArray operations (`try_get`, `try_set`,
/// `try_apply`, `try_update`, `try_rlock`, `try_wlock`, `try_pin`).
///
/// The infallible variants (`get` & co.) panic on these — appropriate for
/// workloads that assume a healthy cluster. Fault-tolerant applications use
/// the `try_` forms and handle degradation themselves.
/// How strongly the membership view believes a peer is gone, carried by
/// [`DArrayError::NodeUnavailable`] so callers can distinguish transient
/// suspicion (retry later; the peer may be re-admitted) from a
/// quorum-confirmed death (permanent; fail over now).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnavailableKind {
    /// Retries toward the node are exhausted but the quorum poll has not
    /// resolved; the suspicion may yet be refuted and the node re-admitted.
    Suspected,
    /// A quorum of the surviving nodes confirmed the death. Permanent for
    /// the lifetime of the cluster (fail-stop model).
    ConfirmedDead,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DArrayError {
    /// The home node of the requested element is unavailable according to
    /// this node's membership view: a reliable RPC to it exhausted
    /// `FaultConfig::max_retries` retransmissions, and (for
    /// [`UnavailableKind::ConfirmedDead`]) a quorum of the remaining nodes
    /// confirmed the death.
    NodeUnavailable {
        /// The unreachable node.
        node: NodeId,
        /// The observer's membership-view epoch at the time the error was
        /// built (number of deaths it had confirmed). Lets callers order
        /// errors against membership changes and discard stale ones.
        epoch: u64,
        /// Transient suspicion vs quorum-confirmed death.
        kind: UnavailableKind,
    },
    /// A runtime thread observed a coherence- or lock-protocol invariant
    /// violation (e.g. a lock grant arriving with no recorded waiter). The
    /// cluster is poisoned: the first diagnostic is recorded and every
    /// subsequent `try_*` call returns it, instead of aborting the process
    /// from inside a runtime thread.
    ProtocolInvariant {
        /// Human-readable diagnostic captured at the point of violation.
        message: String,
    },
}

impl fmt::Display for DArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DArrayError::NodeUnavailable { node, epoch, kind } => match kind {
                UnavailableKind::Suspected => write!(
                    f,
                    "node {node} is unavailable (suspected, membership epoch {epoch}; \
                     quorum poll unresolved)"
                ),
                UnavailableKind::ConfirmedDead => write!(
                    f,
                    "node {node} is unavailable (death confirmed by quorum at \
                     membership epoch {epoch})"
                ),
            },
            DArrayError::ProtocolInvariant { message } => {
                write!(f, "protocol invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for DArrayError {}

/// Rejected [`crate::ClusterConfig`]s, from
/// [`crate::ClusterConfig::try_validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `nodes == 0`.
    NoNodes,
    /// `runtime_threads == 0`.
    NoRuntimeThreads,
    /// Fewer cachelines than runtime threads.
    CacheTooSmall {
        capacity_lines: usize,
        runtime_threads: usize,
    },
    /// Watermarks outside `[0, 1]` or `low > high`.
    BadWatermarks { low: f64, high: f64 },
    /// `cache.line_words == 0`: no array could ever be allocated.
    ZeroLineWords,
    /// An array's `chunk_size` exceeds the cacheline capacity
    /// (`cache.line_words`), so its chunks could never be cached.
    LineWordsBelowChunk {
        line_words: usize,
        chunk_size: usize,
    },
    /// `net.bytes_per_us == 0`: `NetConfig::tx_time` would divide by zero.
    ZeroBandwidth,
    /// `fault.rpc_timeout_ns == 0`: retransmit timers would fire instantly.
    ZeroRpcTimeout,
    /// `fault.max_retries == 0`: a single drop would suspect the peer.
    ZeroMaxRetries,
    /// `fault.lease_ns == 0`: every peer would look permanently silent and
    /// every suspicion would be confirmed instantly.
    ZeroLease,
    /// `fault.heartbeat_ns`, `fault.suspect_poll_ns` or
    /// `fault.suspect_poll_rounds` is zero: the membership timers would
    /// busy-spin or never resolve a suspicion.
    ZeroSuspectTimers,
    /// `fault.heartbeat_ns >= fault.lease_ns`: an idle link's lease would
    /// expire before its next heartbeat, making false suspicion routine.
    HeartbeatExceedsLease {
        heartbeat_ns: dsim::VTime,
        lease_ns: dsim::VTime,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "cluster needs at least one node"),
            ConfigError::NoRuntimeThreads => write!(f, "need at least one runtime thread"),
            ConfigError::CacheTooSmall {
                capacity_lines,
                runtime_threads,
            } => write!(
                f,
                "cache of {capacity_lines} lines cannot serve {runtime_threads} runtime \
                 threads: each runtime thread needs at least one cacheline"
            ),
            ConfigError::BadWatermarks { low, high } => write!(
                f,
                "watermarks must be fractions with low <= high (low={low}, high={high})"
            ),
            ConfigError::ZeroLineWords => write!(f, "cache.line_words must be nonzero"),
            ConfigError::LineWordsBelowChunk {
                line_words,
                chunk_size,
            } => write!(
                f,
                "array chunk_size {chunk_size} exceeds cacheline capacity {line_words}"
            ),
            ConfigError::ZeroBandwidth => write!(
                f,
                "net.bytes_per_us must be nonzero (tx_time would divide by zero)"
            ),
            ConfigError::ZeroRpcTimeout => write!(f, "fault.rpc_timeout_ns must be nonzero"),
            ConfigError::ZeroMaxRetries => write!(f, "fault.max_retries must be nonzero"),
            ConfigError::ZeroLease => write!(f, "fault.lease_ns must be nonzero"),
            ConfigError::ZeroSuspectTimers => write!(
                f,
                "fault.heartbeat_ns, fault.suspect_poll_ns and fault.suspect_poll_rounds \
                 must all be nonzero"
            ),
            ConfigError::HeartbeatExceedsLease {
                heartbeat_ns,
                lease_ns,
            } => write!(
                f,
                "fault.heartbeat_ns ({heartbeat_ns}) must be below fault.lease_ns \
                 ({lease_ns}) or idle leases expire between heartbeats"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_field() {
        assert!(ConfigError::ZeroBandwidth
            .to_string()
            .contains("bytes_per_us"));
        assert!(ConfigError::NoNodes
            .to_string()
            .contains("at least one node"));
        assert!(ConfigError::BadWatermarks {
            low: 0.9,
            high: 0.1
        }
        .to_string()
        .contains("watermark"));
        let e = DArrayError::NodeUnavailable {
            node: 3,
            epoch: 2,
            kind: UnavailableKind::ConfirmedDead,
        };
        let s = e.to_string();
        assert!(s.contains("node 3"));
        assert!(s.contains("epoch 2"), "membership epoch surfaced: {s}");
        assert!(s.contains("quorum"), "confirmation source surfaced: {s}");
        let e = DArrayError::NodeUnavailable {
            node: 1,
            epoch: 0,
            kind: UnavailableKind::Suspected,
        };
        let s = e.to_string();
        assert!(s.contains("suspected"), "suspicion distinguishable: {s}");
        let e = DArrayError::ProtocolInvariant {
            message: "LockGrant with no registered waiter".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("protocol invariant violated"));
        assert!(s.contains("no registered waiter"), "diagnostic preserved");
    }
}
