//! Structured errors: fallible configuration validation ([`ConfigError`])
//! and graceful degradation of operations that target unreachable nodes
//! ([`DArrayError`]).

use std::fmt;

use rdma_fabric::NodeId;

/// Errors surfaced by the fallible DArray operations (`try_get`, `try_set`,
/// `try_apply`, `try_update`, `try_rlock`, `try_wlock`, `try_pin`).
///
/// The infallible variants (`get` & co.) panic on these — appropriate for
/// workloads that assume a healthy cluster. Fault-tolerant applications use
/// the `try_` forms and handle degradation themselves.
/// How strongly the membership view believes a peer is gone, carried by
/// [`DArrayError::NodeUnavailable`] so callers can distinguish transient
/// suspicion (retry later; the peer may be re-admitted) from a
/// quorum-confirmed death (permanent; fail over now).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnavailableKind {
    /// Retries toward the node are exhausted but the quorum poll has not
    /// resolved; the suspicion may yet be refuted and the node re-admitted.
    Suspected,
    /// A quorum of the surviving nodes confirmed the death. Permanent for
    /// the lifetime of the cluster (fail-stop model).
    ConfirmedDead,
}

#[derive(Debug, Clone, PartialEq)]
pub enum DArrayError {
    /// The cluster configuration was rejected before bring-up (by
    /// `Cluster::try_new`), or transport bring-up itself failed. Carries
    /// the structured [`ConfigError`] so callers can match on the exact
    /// knob instead of parsing a panic message.
    Config(ConfigError),
    /// The home node of the requested element is unavailable according to
    /// this node's membership view: a reliable RPC to it exhausted
    /// `FaultConfig::max_retries` retransmissions, and (for
    /// [`UnavailableKind::ConfirmedDead`]) a quorum of the remaining nodes
    /// confirmed the death.
    NodeUnavailable {
        /// The unreachable node.
        node: NodeId,
        /// The observer's membership-view epoch at the time the error was
        /// built (number of deaths it had confirmed). Lets callers order
        /// errors against membership changes and discard stale ones.
        epoch: u64,
        /// Transient suspicion vs quorum-confirmed death.
        kind: UnavailableKind,
    },
    /// A runtime thread observed a coherence- or lock-protocol invariant
    /// violation (e.g. a lock grant arriving with no recorded waiter). The
    /// cluster is poisoned: the first diagnostic is recorded and every
    /// subsequent `try_*` call returns it, instead of aborting the process
    /// from inside a runtime thread.
    ProtocolInvariant {
        /// Human-readable diagnostic captured at the point of violation.
        message: String,
    },
}

impl From<ConfigError> for DArrayError {
    fn from(e: ConfigError) -> Self {
        DArrayError::Config(e)
    }
}

impl fmt::Display for DArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DArrayError::Config(e) => write!(f, "invalid ClusterConfig: {e}"),
            DArrayError::NodeUnavailable { node, epoch, kind } => match kind {
                UnavailableKind::Suspected => write!(
                    f,
                    "node {node} is unavailable (suspected, membership epoch {epoch}; \
                     quorum poll unresolved)"
                ),
                UnavailableKind::ConfirmedDead => write!(
                    f,
                    "node {node} is unavailable (death confirmed by quorum at \
                     membership epoch {epoch})"
                ),
            },
            DArrayError::ProtocolInvariant { message } => {
                write!(f, "protocol invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for DArrayError {}

/// Rejected [`crate::ClusterConfig`]s, from
/// [`crate::ClusterConfig::try_validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `nodes == 0`.
    NoNodes,
    /// `runtime_threads == 0`.
    NoRuntimeThreads,
    /// Fewer cachelines than runtime threads.
    CacheTooSmall {
        capacity_lines: usize,
        runtime_threads: usize,
    },
    /// Watermarks outside `[0, 1]` or `low > high`.
    BadWatermarks { low: f64, high: f64 },
    /// `cache.line_words == 0`: no array could ever be allocated.
    ZeroLineWords,
    /// An array's `chunk_size` exceeds the cacheline capacity
    /// (`cache.line_words`), so its chunks could never be cached.
    LineWordsBelowChunk {
        line_words: usize,
        chunk_size: usize,
    },
    /// `net.bytes_per_us == 0`: `NetConfig::tx_time` would divide by zero.
    ZeroBandwidth,
    /// `fault.rpc_timeout_ns == 0`: retransmit timers would fire instantly.
    ZeroRpcTimeout,
    /// `fault.max_retries == 0`: a single drop would suspect the peer.
    ZeroMaxRetries,
    /// `fault.lease_ns == 0`: every peer would look permanently silent and
    /// every suspicion would be confirmed instantly.
    ZeroLease,
    /// `fault.heartbeat_ns`, `fault.suspect_poll_ns` or
    /// `fault.suspect_poll_rounds` is zero: the membership timers would
    /// busy-spin or never resolve a suspicion.
    ZeroSuspectTimers,
    /// `fault.heartbeat_ns >= fault.lease_ns`: an idle link's lease would
    /// expire before its next heartbeat, making false suspicion routine.
    HeartbeatExceedsLease {
        heartbeat_ns: dsim::VTime,
        lease_ns: dsim::VTime,
    },
    /// `tcp.max_frame_words == 0`: every one-sided WRITE would be split
    /// into zero-word frames forever.
    ZeroFrameWords,
    /// `tcp.poll_ns == 0`: the Rx thread would busy-poll the inbox without
    /// ever advancing virtual time, starving every simulated timer.
    ZeroTransportPoll,
    /// `tcp.pump_threads == 0`: no event-loop thread would service the
    /// node's links, so no frame could ever leave or arrive.
    ZeroPumpThreads,
    /// `batch.send_batch_max == 0`: no egress flush could ever carry a
    /// frame, so the doorbell ring would back up forever.
    ZeroSendBatch,
    /// `batch.flush_every_frames == Some(0)`: the selective-signaling
    /// interval would divide by zero (use `None` for the backend default).
    ZeroFlushInterval,
    /// The static TCP address map has the wrong number of entries.
    TransportAddrCount { expected: usize, got: usize },
    /// An entry in the static TCP address map is not a parseable
    /// `ip:port` socket address.
    TransportAddrInvalid { addr: String },
    /// Two nodes in the static TCP address map share an address (port
    /// collision) — both listeners cannot bind.
    TransportAddrCollision { addr: String },
    /// `transport` selects the TCP backend but the crate was built without
    /// the `tcp-transport` cargo feature.
    TcpFeatureDisabled,
    /// `transport` selects the TCP backend together with a non-benign
    /// `FaultPlan`: fault injection (drops, stalls, crashes, partitions)
    /// is a property of the simulated fabric and cannot be imposed on real
    /// OS sockets.
    TransportFaultInjection,
    /// Transport bring-up failed at the OS level (bind/connect/handshake).
    TransportBringUp { message: String },
    /// `durability.policy` is enabled but `durability.dir` is unset: there
    /// is nowhere to put the per-node logs.
    DurabilityDirMissing { policy: &'static str },
    /// Opening or replaying a node's durable chunk log failed at the OS
    /// level (create/read/seek/fsync).
    DurabilityBringUp { message: String },
    /// `initial_nodes` is set without `elastic`: a fixed-partition cluster
    /// has no join path, so spares could never become active.
    InitialNodesWithoutElastic,
    /// `initial_nodes` is zero or exceeds `nodes`: the active set must be a
    /// non-empty prefix of the configured nodes.
    BadInitialNodes { initial_nodes: usize, nodes: usize },
    /// The durability directory was written by an incarnation with a
    /// different `runtime_threads`: chunk→thread placement is part of the
    /// recovery contract, so the log cannot be replayed under this count.
    RuntimeThreadsChanged { recorded: usize, configured: usize },
    /// The durability directory was written by an incarnation with a
    /// different node count: the even partition (chunk→home placement) is
    /// part of the recovery contract, so replaying node `k`'s log into a
    /// differently-shaped cluster would rehome every recovered chunk.
    ClusterNodesChanged { recorded: usize, configured: usize },
    /// `durability.checkpoint_every_persists == Some(0)`: every persist
    /// would trigger a full-image checkpoint, turning each ack into a
    /// snapshot of the whole store.
    ZeroCheckpointInterval,
    /// `durability.checkpoint_every_persists` or `durability.compact` is
    /// set while `durability.policy` is `none`: there is no store to
    /// checkpoint or compact.
    CheckpointWithoutDurability,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "cluster needs at least one node"),
            ConfigError::NoRuntimeThreads => write!(f, "need at least one runtime thread"),
            ConfigError::CacheTooSmall {
                capacity_lines,
                runtime_threads,
            } => write!(
                f,
                "cache of {capacity_lines} lines cannot serve {runtime_threads} runtime \
                 threads: each runtime thread needs at least one cacheline"
            ),
            ConfigError::BadWatermarks { low, high } => write!(
                f,
                "watermarks must be fractions with low <= high (low={low}, high={high})"
            ),
            ConfigError::ZeroLineWords => write!(f, "cache.line_words must be nonzero"),
            ConfigError::LineWordsBelowChunk {
                line_words,
                chunk_size,
            } => write!(
                f,
                "array chunk_size {chunk_size} exceeds cacheline capacity {line_words}"
            ),
            ConfigError::ZeroBandwidth => write!(
                f,
                "net.bytes_per_us must be nonzero (tx_time would divide by zero)"
            ),
            ConfigError::ZeroRpcTimeout => write!(f, "fault.rpc_timeout_ns must be nonzero"),
            ConfigError::ZeroMaxRetries => write!(f, "fault.max_retries must be nonzero"),
            ConfigError::ZeroLease => write!(f, "fault.lease_ns must be nonzero"),
            ConfigError::ZeroSuspectTimers => write!(
                f,
                "fault.heartbeat_ns, fault.suspect_poll_ns and fault.suspect_poll_rounds \
                 must all be nonzero"
            ),
            ConfigError::HeartbeatExceedsLease {
                heartbeat_ns,
                lease_ns,
            } => write!(
                f,
                "fault.heartbeat_ns ({heartbeat_ns}) must be below fault.lease_ns \
                 ({lease_ns}) or idle leases expire between heartbeats"
            ),
            ConfigError::ZeroFrameWords => write!(f, "tcp.max_frame_words must be nonzero"),
            ConfigError::ZeroTransportPoll => write!(f, "tcp.poll_ns must be nonzero"),
            ConfigError::ZeroPumpThreads => write!(f, "tcp.pump_threads must be nonzero"),
            ConfigError::ZeroSendBatch => write!(f, "batch.send_batch_max must be nonzero"),
            ConfigError::ZeroFlushInterval => write!(
                f,
                "batch.flush_every_frames must be nonzero (None selects the backend default)"
            ),
            ConfigError::TransportAddrCount { expected, got } => write!(
                f,
                "tcp.addrs must list one address per node ({expected} nodes, {got} addresses)"
            ),
            ConfigError::TransportAddrInvalid { addr } => {
                write!(f, "tcp.addrs entry {addr:?} is not a valid ip:port address")
            }
            ConfigError::TransportAddrCollision { addr } => write!(
                f,
                "tcp.addrs entry {addr} is assigned to more than one node (port collision)"
            ),
            ConfigError::TcpFeatureDisabled => write!(
                f,
                "transport = Tcp requires building with the tcp-transport cargo feature"
            ),
            ConfigError::TransportFaultInjection => write!(
                f,
                "transport = Tcp cannot run a non-benign FaultPlan: fault injection \
                 is a property of the simulated fabric"
            ),
            ConfigError::TransportBringUp { message } => {
                write!(f, "transport bring-up failed: {message}")
            }
            ConfigError::DurabilityDirMissing { policy } => write!(
                f,
                "durability.policy = {policy} requires durability.dir to locate the \
                 per-node chunk logs"
            ),
            ConfigError::DurabilityBringUp { message } => {
                write!(f, "durable chunk store bring-up failed: {message}")
            }
            ConfigError::InitialNodesWithoutElastic => write!(
                f,
                "initial_nodes requires elastic: without a join path, spare \
                 nodes could never become active"
            ),
            ConfigError::BadInitialNodes {
                initial_nodes,
                nodes,
            } => write!(
                f,
                "initial_nodes ({initial_nodes}) must be in 1..={nodes}: the active \
                 set is a non-empty prefix of the configured nodes"
            ),
            ConfigError::RuntimeThreadsChanged {
                recorded,
                configured,
            } => write!(
                f,
                "durability.dir was written by an incarnation with runtime_threads = \
                 {recorded}, but this configuration sets {configured}; chunk placement \
                 is part of the recovery contract, so reuse the recorded count or a \
                 fresh directory"
            ),
            ConfigError::ClusterNodesChanged {
                recorded,
                configured,
            } => write!(
                f,
                "durability.dir was written by an incarnation with nodes = {recorded}, \
                 but this configuration sets {configured}; the even partition is part \
                 of the recovery contract, so reuse the recorded node count or a fresh \
                 directory"
            ),
            ConfigError::ZeroCheckpointInterval => write!(
                f,
                "durability.checkpoint_every_persists must be nonzero: a zero interval \
                 would snapshot the whole store on every persisted ack"
            ),
            ConfigError::CheckpointWithoutDurability => write!(
                f,
                "durability.checkpoint_every_persists / durability.compact require a \
                 durable durability.policy: with policy = none there is no store to \
                 checkpoint or compact"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_field() {
        assert!(ConfigError::ZeroBandwidth
            .to_string()
            .contains("bytes_per_us"));
        assert!(ConfigError::NoNodes
            .to_string()
            .contains("at least one node"));
        assert!(ConfigError::BadWatermarks {
            low: 0.9,
            high: 0.1
        }
        .to_string()
        .contains("watermark"));
        let e = DArrayError::NodeUnavailable {
            node: 3,
            epoch: 2,
            kind: UnavailableKind::ConfirmedDead,
        };
        let s = e.to_string();
        assert!(s.contains("node 3"));
        assert!(s.contains("epoch 2"), "membership epoch surfaced: {s}");
        assert!(s.contains("quorum"), "confirmation source surfaced: {s}");
        let e = DArrayError::NodeUnavailable {
            node: 1,
            epoch: 0,
            kind: UnavailableKind::Suspected,
        };
        let s = e.to_string();
        assert!(s.contains("suspected"), "suspicion distinguishable: {s}");
        let e = DArrayError::ProtocolInvariant {
            message: "LockGrant with no registered waiter".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("protocol invariant violated"));
        assert!(s.contains("no registered waiter"), "diagnostic preserved");
    }

    #[test]
    fn transport_errors_name_the_knob() {
        assert!(ConfigError::ZeroFrameWords
            .to_string()
            .contains("max_frame_words"));
        assert!(ConfigError::ZeroTransportPoll
            .to_string()
            .contains("poll_ns"));
        assert!(ConfigError::TransportAddrCount {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("3 nodes"));
        assert!(ConfigError::TransportAddrCollision {
            addr: "127.0.0.1:9000".to_string()
        }
        .to_string()
        .contains("127.0.0.1:9000"));
        assert!(ConfigError::TcpFeatureDisabled
            .to_string()
            .contains("tcp-transport"));
        assert!(ConfigError::TransportFaultInjection
            .to_string()
            .contains("FaultPlan"));
        assert!(ConfigError::DurabilityDirMissing {
            policy: "writeback"
        }
        .to_string()
        .contains("durability.dir"));
        assert!(ConfigError::DurabilityBringUp {
            message: "permission denied".to_string()
        }
        .to_string()
        .contains("permission denied"));
        let s = ConfigError::ClusterNodesChanged {
            recorded: 3,
            configured: 5,
        }
        .to_string();
        assert!(s.contains("nodes = 3"), "recorded count surfaced: {s}");
        assert!(s.contains('5'), "configured count surfaced: {s}");
        assert!(ConfigError::ZeroCheckpointInterval
            .to_string()
            .contains("checkpoint_every_persists"));
        assert!(ConfigError::CheckpointWithoutDurability
            .to_string()
            .contains("durability.policy"));
        let e = DArrayError::Config(ConfigError::ZeroFrameWords);
        assert!(e.to_string().contains("invalid ClusterConfig"));
        assert_eq!(
            DArrayError::from(ConfigError::ZeroFrameWords),
            DArrayError::Config(ConfigError::ZeroFrameWords)
        );
    }
}
