//! Distributed reader/writer locks with element granularity (Figure 3's
//! `RLock` / `WLock` / `UnLock`).
//!
//! Each element's lock is managed by the home node of the element's chunk;
//! acquisitions and releases are routed there (one round trip for remote
//! callers), with FIFO queuing of conflicting requests. The Figure 14
//! baseline (`WLock+Read+Write`) exercises exactly this path.

use std::collections::{HashMap, VecDeque};

use dsim::WaitCell;
use rdma_fabric::NodeId;

use crate::msg::LockKind;

/// Where a lock request came from.
pub(crate) enum LockSource {
    Local(WaitCell),
    Remote(NodeId),
}

/// State of one element's distributed lock.
#[derive(Default)]
pub(crate) struct ElemLock {
    readers: u32,
    writer: bool,
    queue: VecDeque<(LockSource, LockKind)>,
}

impl ElemLock {
    fn grantable(&self, kind: LockKind) -> bool {
        match kind {
            // FIFO fairness: a new reader must also wait behind any queued
            // (writer) request.
            LockKind::Read => !self.writer && self.queue.is_empty(),
            LockKind::Write => !self.writer && self.readers == 0 && self.queue.is_empty(),
        }
    }

    fn grant(&mut self, kind: LockKind) {
        match kind {
            LockKind::Read => self.readers += 1,
            LockKind::Write => self.writer = true,
        }
    }

    fn is_idle(&self) -> bool {
        self.readers == 0 && !self.writer && self.queue.is_empty()
    }
}

/// The home node's table of element locks. Only elements with lock activity
/// occupy table space.
#[derive(Default)]
pub(crate) struct LockTable {
    locks: HashMap<u64, ElemLock>,
}

impl LockTable {
    /// Try to acquire; on success the grant must be delivered to `source` by
    /// the caller (returned as `Some(source)`), otherwise the request is
    /// queued.
    pub(crate) fn acquire(
        &mut self,
        id: u64,
        kind: LockKind,
        source: LockSource,
    ) -> Option<LockSource> {
        let e = self.locks.entry(id).or_default();
        if e.grantable(kind) {
            e.grant(kind);
            Some(source)
        } else {
            e.queue.push_back((source, kind));
            None
        }
    }

    /// Release a held lock; returns the queued requests that become
    /// grantable (already granted in the table — the caller delivers them).
    pub(crate) fn release(&mut self, id: u64, kind: LockKind) -> Vec<(LockSource, LockKind)> {
        let mut granted = Vec::new();
        let Some(e) = self.locks.get_mut(&id) else {
            debug_assert!(false, "release of unheld lock {id}");
            return granted;
        };
        match kind {
            LockKind::Read => {
                debug_assert!(e.readers > 0);
                e.readers = e.readers.saturating_sub(1);
            }
            LockKind::Write => {
                debug_assert!(e.writer);
                e.writer = false;
            }
        }
        // Wake the FIFO prefix that is now grantable (one writer, or a batch
        // of readers).
        while let Some(&(_, k)) = e.queue.front() {
            let can = match k {
                LockKind::Read => !e.writer,
                LockKind::Write => !e.writer && e.readers == 0,
            };
            if !can {
                break;
            }
            let (src, k) = e.queue.pop_front().unwrap();
            e.grant(k);
            granted.push((src, k));
            if k == LockKind::Write {
                break;
            }
        }
        if e.is_idle() {
            self.locks.remove(&id);
        }
        granted
    }

    /// Number of elements with active lock state (diagnostics).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn active(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local() -> LockSource {
        LockSource::Local(WaitCell::new())
    }

    #[test]
    fn uncontended_read_and_write_grant_immediately() {
        let mut t = LockTable::default();
        assert!(t.acquire(1, LockKind::Read, local()).is_some());
        assert!(t.acquire(2, LockKind::Write, local()).is_some());
        assert_eq!(t.active(), 2);
        t.release(1, LockKind::Read);
        t.release(2, LockKind::Write);
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn readers_share_writers_exclude() {
        let mut t = LockTable::default();
        assert!(t.acquire(7, LockKind::Read, local()).is_some());
        assert!(t.acquire(7, LockKind::Read, local()).is_some());
        assert!(t.acquire(7, LockKind::Write, local()).is_none()); // queued
                                                                   // A reader arriving behind the queued writer waits (fairness).
        assert!(t.acquire(7, LockKind::Read, local()).is_none());
        t.release(7, LockKind::Read);
        let g = t.release(7, LockKind::Read);
        // Writer granted first.
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].1, LockKind::Write));
        let g = t.release(7, LockKind::Write);
        // Then the queued reader.
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].1, LockKind::Read));
        t.release(7, LockKind::Read);
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn reader_batch_granted_together() {
        let mut t = LockTable::default();
        assert!(t.acquire(3, LockKind::Write, local()).is_some());
        assert!(t.acquire(3, LockKind::Read, local()).is_none());
        assert!(t.acquire(3, LockKind::Read, local()).is_none());
        assert!(t.acquire(3, LockKind::Write, local()).is_none());
        let g = t.release(3, LockKind::Write);
        // Both readers wake; the writer behind them does not.
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(|(_, k)| *k == LockKind::Read));
        t.release(3, LockKind::Read);
        let g = t.release(3, LockKind::Read);
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].1, LockKind::Write));
        t.release(3, LockKind::Write);
    }

    #[test]
    fn writer_chain_is_fifo() {
        let mut t = LockTable::default();
        assert!(t
            .acquire(9, LockKind::Write, LockSource::Remote(1))
            .is_some());
        assert!(t
            .acquire(9, LockKind::Write, LockSource::Remote(2))
            .is_none());
        assert!(t
            .acquire(9, LockKind::Write, LockSource::Remote(3))
            .is_none());
        let g = t.release(9, LockKind::Write);
        assert_eq!(g.len(), 1);
        assert!(matches!(g[0].0, LockSource::Remote(2)));
        let g = t.release(9, LockKind::Write);
        assert!(matches!(g[0].0, LockSource::Remote(3)));
        t.release(9, LockKind::Write);
        assert_eq!(t.active(), 0);
    }
}
