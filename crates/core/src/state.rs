//! Protocol states of the extended cache coherence protocol (§4.4).
//!
//! Two views exist of each chunk's state:
//!
//! * the **directory state** ([`DirState`]) at the home node — the global
//!   truth of Table 1 / Figure 9;
//! * the **local access rights** ([`LocalState`]) each node caches in its
//!   dentry, which is what the lock-free fast path consults.

use crate::op::OpId;
use rdma_fabric::NodeId;

/// Local access rights a node holds on a chunk, stored in the dentry as an
/// atomic byte for the lock-free fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LocalState {
    /// No rights; any access takes the slow path.
    Invalid = 0,
    /// Read-only copy (home side of `Shared`, or a remote shared copy).
    Shared = 1,
    /// Full Read/Write/Operate rights (home `Unshared`, or the remote owner
    /// of a `Dirty` chunk).
    Exclusive = 2,
    /// Operate-only rights under a specific operator (the dentry's `op_tag`
    /// names it).
    Operated = 3,
    /// Transient: a read fill is in flight.
    FillingShared = 4,
    /// Transient: an exclusive fill is in flight.
    FillingExclusive = 5,
    /// Transient: an Operated grant is in flight.
    FillingOperated = 6,
}

impl LocalState {
    /// Decode from the dentry's atomic byte.
    #[inline]
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Invalid,
            1 => Self::Shared,
            2 => Self::Exclusive,
            3 => Self::Operated,
            4 => Self::FillingShared,
            5 => Self::FillingExclusive,
            6 => Self::FillingOperated,
            _ => unreachable!("invalid LocalState byte {v}"),
        }
    }

    /// Reads permitted?
    #[inline]
    pub fn readable(self) -> bool {
        matches!(self, Self::Shared | Self::Exclusive)
    }

    /// Writes permitted?
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, Self::Exclusive)
    }

    /// Operate permitted (under the dentry's current op tag, checked
    /// separately)? Exclusive rights subsume Operate, since the holder can
    /// perform the read-modify-write locally.
    #[inline]
    pub fn operable(self) -> bool {
        matches!(self, Self::Operated | Self::Exclusive)
    }

    /// An intermediate (in-flight) state, which the eviction scan must skip
    /// (§4.2: "a scanned cacheline ... not in an intermediate state").
    #[inline]
    pub fn in_flight(self) -> bool {
        matches!(
            self,
            Self::FillingShared | Self::FillingExclusive | Self::FillingOperated
        )
    }

    /// State name for structured protocol traces.
    pub fn name(self) -> &'static str {
        match self {
            Self::Invalid => "Invalid",
            Self::Shared => "Shared",
            Self::Exclusive => "Exclusive",
            Self::Operated => "Operated",
            Self::FillingShared => "FillingShared",
            Self::FillingExclusive => "FillingExclusive",
            Self::FillingOperated => "FillingOperated",
        }
    }
}

/// Directory (home-node) state of a chunk: the four stable states of
/// Table 1. Transient phases during multi-message transitions are tracked
/// separately by the home-side machine (`protocol::Transient`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// Exclusively owned by the home node (R/W/O at home, nothing
    /// elsewhere).
    Unshared,
    /// Readable everywhere; `sharers` lists the remote nodes holding
    /// copies.
    Shared { sharers: Vec<NodeId> },
    /// A single non-home node holds exclusive R/W rights.
    Dirty { owner: NodeId },
    /// All listed nodes (plus the home node) may apply operator `op`
    /// concurrently; operands are combined locally and reduced at home.
    Operated { op: OpId, sharers: Vec<NodeId> },
}

impl DirState {
    /// Home-node rights row of Table 1.
    pub fn home_rights(&self) -> Rights {
        match self {
            DirState::Unshared => Rights::RWO,
            DirState::Shared { .. } => Rights::R,
            DirState::Dirty { .. } => Rights::None,
            DirState::Operated { .. } => Rights::O,
        }
    }

    /// Other-node rights row of Table 1 (for nodes listed as holders).
    pub fn other_rights(&self) -> Rights {
        match self {
            DirState::Unshared => Rights::None,
            DirState::Shared { .. } => Rights::R,
            DirState::Dirty { .. } => Rights::RW,
            DirState::Operated { .. } => Rights::O,
        }
    }

    /// Exclusivity column of Table 1.
    pub fn exclusive(&self) -> bool {
        matches!(self, DirState::Unshared | DirState::Dirty { .. })
    }

    /// Table-1 row name.
    pub fn name(&self) -> &'static str {
        match self {
            DirState::Unshared => "Unshared",
            DirState::Shared { .. } => "Shared",
            DirState::Dirty { .. } => "Dirty",
            DirState::Operated { .. } => "Operated",
        }
    }

    /// The [`LocalState`] the *home node's* dentry must hold under this
    /// directory state.
    pub fn home_local(&self) -> LocalState {
        match self {
            DirState::Unshared => LocalState::Exclusive,
            DirState::Shared { .. } => LocalState::Shared,
            DirState::Dirty { .. } => LocalState::Invalid,
            DirState::Operated { .. } => LocalState::Operated,
        }
    }
}

/// Access-rights set (Table 1 cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rights {
    None,
    R,
    RW,
    O,
    RWO,
}

impl Rights {
    pub fn allows_read(self) -> bool {
        matches!(self, Rights::R | Rights::RW | Rights::RWO)
    }
    pub fn allows_write(self) -> bool {
        matches!(self, Rights::RW | Rights::RWO)
    }
    pub fn allows_operate(self) -> bool {
        // RW holders can emulate Operate with a local read-modify-write.
        matches!(self, Rights::O | Rights::RWO | Rights::RW)
    }
}

impl std::fmt::Display for Rights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Rights::None => "None",
            Rights::R => "R",
            Rights::RW => "R/W",
            Rights::O => "O",
            Rights::RWO => "R/W/O",
        };
        write!(f, "{s}")
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub state: &'static str,
    pub home: Rights,
    pub others: Rights,
    pub exclusive: bool,
}

/// Regenerate Table 1 from the protocol implementation (used by the
/// `table1` bench binary and checked against the paper in tests).
pub fn table1_rows() -> Vec<Table1Row> {
    let states = [
        DirState::Unshared,
        DirState::Shared { sharers: vec![1] },
        DirState::Dirty { owner: 1 },
        DirState::Operated {
            op: OpId(0),
            sharers: vec![1],
        },
    ];
    states
        .iter()
        .map(|s| Table1Row {
            state: s.name(),
            home: s.home_rights(),
            others: s.other_rights(),
            exclusive: s.exclusive(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_state_byte_roundtrip() {
        for v in 0..=6u8 {
            assert_eq!(LocalState::from_u8(v) as u8, v);
        }
    }

    #[test]
    fn readable_writable_operable_predicates() {
        use LocalState::*;
        assert!(Shared.readable() && !Shared.writable() && !Shared.operable());
        assert!(Exclusive.readable() && Exclusive.writable() && Exclusive.operable());
        assert!(!Operated.readable() && !Operated.writable() && Operated.operable());
        assert!(!Invalid.readable() && !Invalid.writable() && !Invalid.operable());
        for s in [FillingShared, FillingExclusive, FillingOperated] {
            assert!(s.in_flight());
            assert!(!s.readable() && !s.writable() && !s.operable());
        }
    }

    #[test]
    fn table1_matches_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        // Unshared: home R/W/O, others None, exclusive Yes.
        assert_eq!(rows[0].home, Rights::RWO);
        assert_eq!(rows[0].others, Rights::None);
        assert!(rows[0].exclusive);
        // Shared: R / R / No.
        assert_eq!(rows[1].home, Rights::R);
        assert_eq!(rows[1].others, Rights::R);
        assert!(!rows[1].exclusive);
        // Dirty: None / R/W / Yes.
        assert_eq!(rows[2].home, Rights::None);
        assert_eq!(rows[2].others, Rights::RW);
        assert!(rows[2].exclusive);
        // Operated: O / O / No.
        assert_eq!(rows[3].home, Rights::O);
        assert_eq!(rows[3].others, Rights::O);
        assert!(!rows[3].exclusive);
    }

    #[test]
    fn home_local_state_tracks_directory() {
        assert_eq!(DirState::Unshared.home_local(), LocalState::Exclusive);
        assert_eq!(
            DirState::Shared { sharers: vec![] }.home_local(),
            LocalState::Shared
        );
        assert_eq!(
            DirState::Dirty { owner: 2 }.home_local(),
            LocalState::Invalid
        );
        assert_eq!(
            DirState::Operated {
                op: OpId(1),
                sharers: vec![]
            }
            .home_local(),
            LocalState::Operated
        );
    }

    #[test]
    fn rights_predicates() {
        assert!(
            Rights::RWO.allows_read() && Rights::RWO.allows_write() && Rights::RWO.allows_operate()
        );
        assert!(
            Rights::RW.allows_operate(),
            "RW can emulate Operate locally"
        );
        assert!(!Rights::R.allows_write());
        assert!(!Rights::O.allows_read());
        assert!(!Rights::None.allows_read());
    }
}
