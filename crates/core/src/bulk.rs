//! Bulk range operations, built on the Pin interface: one pin per chunk
//! window amortizes the per-access atomics over whole ranges, which is how
//! the paper's applications scan arrays ("appropriate sequential access
//! scenarios", §4.1).

use dsim::Ctx;

use crate::array::DArray;
use crate::element::Element;
use crate::op::OpId;
use crate::pin::PinMode;

impl<T: Element> DArray<T> {
    fn windows(&self, range: std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
        assert!(range.end <= self.len(), "range out of bounds");
        let chunk = self.chunk_size();
        let mut out = Vec::new();
        let mut at = range.start;
        while at < range.end {
            let hi = (at - at % chunk + chunk).min(range.end);
            out.push(at..hi);
            at = hi;
        }
        out
    }

    /// Read `range` into a vector (chunk-pinned sequential reads).
    pub fn get_range(&self, ctx: &mut Ctx, range: std::ops::Range<usize>) -> Vec<T> {
        let mut out = Vec::with_capacity(range.len());
        for w in self.windows(range) {
            let p = self.pin(ctx, w.start, PinMode::Read);
            for i in w {
                out.push(p.get(ctx, i));
            }
        }
        out
    }

    /// Write values starting at `start` (chunk-pinned sequential writes).
    pub fn set_range(&self, ctx: &mut Ctx, start: usize, values: &[T]) {
        for w in self.windows(start..start + values.len()) {
            let p = self.pin(ctx, w.start, PinMode::Write);
            for i in w {
                p.set(ctx, i, values[i - start]);
            }
        }
    }

    /// Apply `op` with per-element operands starting at `start`
    /// (chunk-pinned combining).
    pub fn apply_range(&self, ctx: &mut Ctx, start: usize, op: OpId, operands: &[T]) {
        for w in self.windows(start..start + operands.len()) {
            let p = self.pin(ctx, w.start, PinMode::Operate(op));
            for i in w {
                p.apply(ctx, i, op, operands[i - start]);
            }
        }
    }

    /// Fold over `range` with chunk-pinned reads (avoids materializing the
    /// values).
    pub fn fold_range<A>(
        &self,
        ctx: &mut Ctx,
        range: std::ops::Range<usize>,
        init: A,
        mut f: impl FnMut(A, T) -> A,
    ) -> A {
        let mut acc = init;
        for w in self.windows(range) {
            let p = self.pin(ctx, w.start, PinMode::Read);
            for i in w {
                acc = f(acc, p.get(ctx, i));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use crate::{ArrayOptions, Cluster, ClusterConfig};
    use dsim::{Sim, SimConfig};

    #[test]
    fn range_ops_roundtrip_across_chunks_and_nodes() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(2));
            let arr = cluster.alloc::<u64>(2048, ArrayOptions::default());
            cluster.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                if env.node == 0 {
                    // Spans chunk 0/1 boundary and the node 0/1 boundary.
                    let vals: Vec<u64> = (0..900).map(|i| i as u64 * 3).collect();
                    a.set_range(ctx, 300, &vals);
                }
                env.barrier(ctx);
                let got = a.get_range(ctx, 300..1200);
                for (k, v) in got.iter().enumerate() {
                    assert_eq!(*v, k as u64 * 3);
                }
                let sum = a.fold_range(ctx, 300..1200, 0u64, |acc, v| acc + v);
                assert_eq!(sum, (0..900).map(|i| i * 3).sum::<u64>());
            });
            cluster.shutdown(ctx);
        });
    }

    #[test]
    fn apply_range_combines_from_all_nodes() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(3));
            let add = cluster.ops().register_add_u64();
            let arr = cluster.alloc::<u64>(1536, ArrayOptions::default());
            cluster.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                let ones = vec![1u64; 700];
                a.apply_range(ctx, 100, add, &ones);
                env.barrier(ctx);
                if env.node == 1 {
                    let got = a.get_range(ctx, 100..800);
                    assert!(got.iter().all(|&v| v == 3));
                    assert_eq!(a.get(ctx, 99), 0);
                    assert_eq!(a.get(ctx, 800), 0);
                }
            });
            cluster.shutdown(ctx);
        });
    }

    #[test]
    fn empty_and_single_element_ranges() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(1));
            let arr = cluster.alloc::<u64>(600, ArrayOptions::default());
            cluster.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                assert!(a.get_range(ctx, 5..5).is_empty());
                a.set_range(ctx, 599, &[42]);
                assert_eq!(a.get_range(ctx, 599..600), vec![42]);
            });
            cluster.shutdown(ctx);
        });
    }
}
