//! Directory entries (dentries): the per-chunk metadata consulted by the
//! lock-free data access path (Figure 4) and manipulated by runtime threads
//! (Figures 5 and 6).
//!
//! The fast path costs exactly what the paper claims: one atomic load
//! (`delay_flag`), two atomic RMWs (`refcnt` up/down), and branches. Runtime
//! threads, which are off the critical path, serialize among themselves with
//! an ordinary mutex and coordinate with application threads through the
//! delay-flag / reference-count drain protocol.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};

use dsim::{Ctx, VirtualLock, WaitCell};
use parking_lot::Mutex;

use crate::state::LocalState;

// Line sentinels are part of the protocol vocabulary; re-exported here for
// the executor and interface layers that index dentries.
pub(crate) use crate::protocol::{LINE_HOME, LINE_NONE};

/// What an application thread wants from a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Want {
    Read,
    Write,
    /// Operate under this operator id.
    Operate(u32),
}

/// Outcome of a fast-path acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Acquire {
    /// Rights held; the reference is kept — caller must `release` after the
    /// data access. Carries the data location (`LINE_HOME` or a cacheline).
    Ok(u32),
    /// `delay_flag` set: a runtime transition is in progress, spin briefly.
    Delayed,
    /// Insufficient rights; go to the slow path.
    NoRights(LocalState),
}

/// Per-chunk directory entry as seen by one node.
pub(crate) struct Dentry {
    state: AtomicU8,
    delay_flag: AtomicBool,
    refcnt: AtomicU32,
    /// Operator id valid while the local state is `Operated`.
    op_tag: AtomicU32,
    /// Cacheline index holding the chunk's data (or a sentinel).
    line: AtomicU32,
    /// Application threads waiting for a slow-path fill; the runtime
    /// notifies and clears on completion.
    pub(crate) waiters: Mutex<Vec<WaitCell>>,
    /// Strawman per-chunk lock for `AccessPath::LockBased` (ablation).
    pub(crate) chunk_lock: VirtualLock,
}

impl Dentry {
    pub(crate) fn new(initial: LocalState, line: u32) -> Self {
        Self {
            state: AtomicU8::new(initial as u8),
            delay_flag: AtomicBool::new(false),
            refcnt: AtomicU32::new(0),
            op_tag: AtomicU32::new(u32::MAX),
            line: AtomicU32::new(line),
            waiters: Mutex::new(Vec::new()),
            chunk_lock: VirtualLock::new(),
        }
    }

    #[inline]
    pub(crate) fn state(&self) -> LocalState {
        LocalState::from_u8(self.state.load(Ordering::Acquire))
    }

    #[inline]
    pub(crate) fn line(&self) -> u32 {
        self.line.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn set_line(&self, line: u32) {
        self.line.store(line, Ordering::Release);
    }

    #[inline]
    pub(crate) fn op_tag(&self) -> u32 {
        self.op_tag.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn refcnt(&self) -> u32 {
        self.refcnt.load(Ordering::SeqCst)
    }

    /// Figure 4 lines 6–15: the lock-free acquisition. On `Ok`, the
    /// reference is held and pins the chunk's state until `release`.
    #[inline]
    pub(crate) fn acquire(&self, want: Want) -> Acquire {
        if self.delay_flag.load(Ordering::SeqCst) {
            return Acquire::Delayed;
        }
        self.refcnt.fetch_add(1, Ordering::SeqCst);
        let s = LocalState::from_u8(self.state.load(Ordering::SeqCst));
        let ok = match want {
            Want::Read => s.readable(),
            Want::Write => s.writable(),
            Want::Operate(tag) => match s {
                LocalState::Exclusive => true,
                LocalState::Operated => self.op_tag.load(Ordering::SeqCst) == tag,
                _ => false,
            },
        };
        if ok {
            Acquire::Ok(self.line.load(Ordering::Acquire))
        } else {
            self.refcnt.fetch_sub(1, Ordering::SeqCst);
            Acquire::NoRights(s)
        }
    }

    /// Figure 4 line 14: release the reference.
    #[inline]
    pub(crate) fn release(&self) {
        let prev = self.refcnt.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "release without acquire");
    }

    /// Figure 5 lines 2–5: the runtime's state-demotion protocol. Sets the
    /// flag, installs the state, and *blocks* until references drain — the
    /// literal form of the paper's pseudo-code, used by tests; the runtime
    /// itself uses the deferred split (`begin_drain`/`drained`/`end_drain`)
    /// to keep its message loop live.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn drain_to(&self, ctx: &mut Ctx, new_state: LocalState, new_tag: u32) {
        self.delay_flag.store(true, Ordering::SeqCst);
        self.op_tag.store(new_tag, Ordering::SeqCst);
        self.state.store(new_state as u8, Ordering::SeqCst);
        while self.refcnt.load(Ordering::SeqCst) > 0 {
            ctx.spin_hint(20);
        }
        self.delay_flag.store(false, Ordering::SeqCst);
    }

    /// First half of the Figure 5 protocol, for the runtime's *deferred*
    /// drains: set the delay flag and install the new state; the runtime
    /// polls [`Dentry::drained`] and calls [`Dentry::end_drain`] once all
    /// references are gone, instead of blocking its message loop.
    #[inline]
    pub(crate) fn begin_drain(&self, new_state: LocalState, new_tag: u32) {
        self.delay_flag.store(true, Ordering::SeqCst);
        self.op_tag.store(new_tag, Ordering::SeqCst);
        self.state.store(new_state as u8, Ordering::SeqCst);
    }

    /// True once no application thread holds a reference.
    #[inline]
    pub(crate) fn drained(&self) -> bool {
        self.refcnt.load(Ordering::SeqCst) == 0
    }

    /// Second half of the deferred drain: unblock application threads.
    #[inline]
    pub(crate) fn end_drain(&self) {
        self.delay_flag.store(false, Ordering::SeqCst);
    }

    /// Is a drain in progress?
    #[inline]
    pub(crate) fn delay_set(&self) -> bool {
        self.delay_flag.load(Ordering::SeqCst)
    }

    /// Figure 6: permission *promotion* — existing accesses remain valid, so
    /// the state is updated without synchronizing with application threads.
    #[inline]
    pub(crate) fn promote_to(&self, new_state: LocalState, new_tag: u32) {
        self.op_tag.store(new_tag, Ordering::SeqCst);
        self.state.store(new_state as u8, Ordering::SeqCst);
    }

    /// Install a transient (Filling*) state from the runtime. No drain is
    /// needed: transitions *into* Filling states only happen from states
    /// with fewer rights, or after an explicit drain.
    #[inline]
    pub(crate) fn set_transient(&self, s: LocalState) {
        debug_assert!(s.in_flight());
        self.state.store(s as u8, Ordering::SeqCst);
    }

    /// Queue an application thread's wait cell for the in-flight fill.
    pub(crate) fn push_waiter(&self, w: WaitCell) {
        self.waiters.lock().push(w);
    }

    /// Notify and clear all fill waiters.
    pub(crate) fn wake_waiters(&self, ctx: &mut Ctx) {
        let ws = std::mem::take(&mut *self.waiters.lock());
        for w in ws {
            w.notify(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsim::{Sim, SimConfig};

    #[test]
    fn acquire_respects_rights() {
        let d = Dentry::new(LocalState::Shared, 7);
        assert_eq!(d.acquire(Want::Read), Acquire::Ok(7));
        d.release();
        assert_eq!(
            d.acquire(Want::Write),
            Acquire::NoRights(LocalState::Shared)
        );
        assert_eq!(d.refcnt(), 0);
    }

    #[test]
    fn exclusive_allows_everything() {
        let d = Dentry::new(LocalState::Exclusive, LINE_HOME);
        for w in [Want::Read, Want::Write, Want::Operate(3)] {
            assert_eq!(d.acquire(w), Acquire::Ok(LINE_HOME));
            d.release();
        }
    }

    #[test]
    fn operated_requires_matching_tag() {
        let d = Dentry::new(LocalState::Invalid, 0);
        d.promote_to(LocalState::Operated, 5);
        assert_eq!(d.acquire(Want::Operate(5)), Acquire::Ok(0));
        d.release();
        assert_eq!(
            d.acquire(Want::Operate(6)),
            Acquire::NoRights(LocalState::Operated)
        );
        assert_eq!(
            d.acquire(Want::Read),
            Acquire::NoRights(LocalState::Operated)
        );
    }

    #[test]
    fn delay_flag_defers_acquisition() {
        let d = Dentry::new(LocalState::Shared, 0);
        d.delay_flag.store(true, Ordering::SeqCst);
        assert_eq!(d.acquire(Want::Read), Acquire::Delayed);
        d.delay_flag.store(false, Ordering::SeqCst);
        assert_eq!(d.acquire(Want::Read), Acquire::Ok(0));
        d.release();
    }

    #[test]
    fn drain_waits_for_references() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let d = std::sync::Arc::new(Dentry::new(LocalState::Shared, 1));
            // An application thread holds a reference for 1 µs.
            let d2 = d.clone();
            let h = ctx.spawn("app", move |c| {
                assert_eq!(d2.acquire(Want::Read), Acquire::Ok(1));
                c.sleep(1_000); // hold the reference across a blocking point
                d2.release();
            });
            // Let the app thread run first (it has the same clock; charging
            // makes ours later so the scheduler picks it).
            ctx.charge(1);
            ctx.yield_now();
            let t0 = ctx.now();
            d.drain_to(ctx, LocalState::Invalid, u32::MAX);
            // The drain must have waited for the reference to drop.
            assert!(ctx.now() >= 1_000, "drain ended at {} (t0={t0})", ctx.now());
            assert_eq!(d.state(), LocalState::Invalid);
            assert_eq!(d.refcnt(), 0);
            h.join(ctx);
        });
    }

    #[test]
    fn acquire_after_drain_sees_new_state() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let d = Dentry::new(LocalState::Exclusive, 2);
            d.drain_to(ctx, LocalState::Shared, u32::MAX);
            assert_eq!(
                d.acquire(Want::Write),
                Acquire::NoRights(LocalState::Shared)
            );
            assert_eq!(d.acquire(Want::Read), Acquire::Ok(2));
            d.release();
        });
    }

    #[test]
    fn waiters_are_notified_once_and_cleared() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let d = std::sync::Arc::new(Dentry::new(LocalState::Invalid, LINE_NONE));
            let w = WaitCell::new();
            d.push_waiter(w.clone());
            let d2 = d.clone();
            let h = ctx.spawn("rt", move |c| {
                c.charge(500);
                d2.promote_to(LocalState::Shared, u32::MAX);
                d2.wake_waiters(c);
            });
            w.wait(ctx);
            assert_eq!(ctx.now(), 500);
            assert!(d.waiters.lock().is_empty());
            h.join(ctx);
        });
    }
}
