//! Home-side directory entries: the global protocol state of each chunk,
//! the transient phases of multi-message transitions, and the queue of
//! requests waiting for the chunk to stabilize.

use std::collections::VecDeque;

use dsim::WaitCell;
use rdma_fabric::NodeId;

use crate::state::DirState;

/// Where a directory request came from.
pub(crate) enum Source {
    /// An application thread on the home node, waiting on this cell.
    Local(WaitCell),
    /// A remote node; fills are RDMA-written to `dst_off` in its cache
    /// region.
    Remote { node: NodeId, dst_off: u64 },
}

/// What the requester wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqKind {
    Read,
    Write,
    Operate(u32),
}

/// A queued directory request.
pub(crate) struct DirReq {
    pub source: Source,
    pub kind: ReqKind,
}

/// Transient phase of a transition that is waiting for remote replies or a
/// local reference drain. While a transient is pending, new requests queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Transient {
    None,
    /// Waiting for `InvalidateAck`s (or crossing `EvictNotice`s) from these
    /// nodes.
    AwaitInvAcks {
        waiting: Vec<NodeId>,
    },
    /// Waiting for a Dirty writeback from `from`.
    AwaitWriteback {
        from: NodeId,
    },
    /// Waiting for operand flushes (of operator `op`) from these nodes.
    AwaitFlushes {
        op: u32,
        waiting: Vec<NodeId>,
    },
    /// Waiting for the home dentry's references to drain.
    HomeDrain,
    /// Waiting out the minimum-hold grace window of a fresh grant; a
    /// `RtMsg::Retry` clears it.
    GraceWait,
}

impl Transient {
    pub(crate) fn is_none(&self) -> bool {
        matches!(self, Transient::None)
    }
}

/// Directory entry of one chunk at its home node. Each chunk is serviced by
/// exactly one runtime thread, so the mutex wrapping this entry is
/// uncontended; it exists for interior mutability.
pub(crate) struct DirEntry {
    pub state: DirState,
    pub transient: Transient,
    /// Virtual time of the most recent grant (fill, Operated grant, or
    /// local completion) — the start of the grace window.
    pub granted_at: dsim::VTime,
    /// The request being serviced by the pending transient, to resume once
    /// the transient completes.
    pub current: Option<DirReq>,
    /// Requests waiting for the chunk to become stable.
    pub pending: VecDeque<DirReq>,
}

impl DirEntry {
    pub(crate) fn new() -> Self {
        Self {
            state: DirState::Unshared,
            transient: Transient::None,
            granted_at: 0,
            current: None,
            pending: VecDeque::new(),
        }
    }

    /// Remove `node` from a transient waiting set; returns true if the set
    /// became empty (the transient completed).
    pub(crate) fn transient_remove(&mut self, node: NodeId) -> bool {
        let set = match &mut self.transient {
            Transient::AwaitInvAcks { waiting } | Transient::AwaitFlushes { waiting, .. } => {
                waiting
            }
            _ => return false,
        };
        if let Some(pos) = set.iter().position(|&n| n == node) {
            set.remove(pos);
        }
        set.is_empty()
    }

    /// Add a remote sharer (idempotent).
    pub(crate) fn add_sharer(&mut self, node: NodeId) {
        match &mut self.state {
            DirState::Shared { sharers } | DirState::Operated { sharers, .. } => {
                if !sharers.contains(&node) {
                    sharers.push(node);
                }
            }
            s => panic!("add_sharer in state {s:?}"),
        }
    }

    /// Remove a remote sharer if present; returns true if it was the last.
    pub(crate) fn remove_sharer(&mut self, node: NodeId) -> bool {
        match &mut self.state {
            DirState::Shared { sharers } | DirState::Operated { sharers, .. } => {
                if let Some(pos) = sharers.iter().position(|&n| n == node) {
                    sharers.remove(pos);
                }
                sharers.is_empty()
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpId;

    #[test]
    fn new_entry_is_unshared_and_stable() {
        let e = DirEntry::new();
        assert_eq!(e.state, DirState::Unshared);
        assert!(e.transient.is_none());
        assert!(e.pending.is_empty());
        assert!(e.current.is_none());
    }

    #[test]
    fn sharer_bookkeeping() {
        let mut e = DirEntry::new();
        e.state = DirState::Shared { sharers: vec![] };
        e.add_sharer(2);
        e.add_sharer(5);
        e.add_sharer(2); // idempotent
        assert_eq!(
            e.state,
            DirState::Shared {
                sharers: vec![2, 5]
            }
        );
        assert!(!e.remove_sharer(2));
        assert!(e.remove_sharer(5));
        assert!(e.remove_sharer(7), "removing from empty set reports empty");
    }

    #[test]
    fn operated_sharers_work_too() {
        let mut e = DirEntry::new();
        e.state = DirState::Operated {
            op: OpId(3),
            sharers: vec![1],
        };
        e.add_sharer(4);
        assert!(!e.remove_sharer(1));
        assert!(e.remove_sharer(4));
    }

    #[test]
    fn transient_sets_drain_to_completion() {
        let mut e = DirEntry::new();
        e.transient = Transient::AwaitFlushes {
            op: 0,
            waiting: vec![1, 2, 3],
        };
        assert!(!e.transient_remove(2));
        assert!(!e.transient_remove(9)); // unknown node: no-op
        assert!(!e.transient_remove(1));
        assert!(e.transient_remove(3));
    }

    #[test]
    fn transient_remove_ignores_wrong_kind() {
        let mut e = DirEntry::new();
        e.transient = Transient::AwaitWriteback { from: 1 };
        assert!(!e.transient_remove(1));
    }
}
