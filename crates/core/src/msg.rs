//! Protocol messages: the RPCs of the extended cache coherence protocol and
//! the queue entries between the interface, runtime and communication
//! layers (Figure 2).

use dsim::WaitCell;
use rdma_fabric::NodeId;

/// Index of an array in the cluster registry.
pub(crate) type ArrayId = u32;
/// Global chunk index within an array.
pub(crate) type ChunkId = u32;

pub use crate::protocol::locks::LockKind;

/// Coherence RPCs exchanged between runtimes. Application data itself
/// travels by one-sided RDMA WRITE; these messages carry protocol control
/// (and combined operands, which require CPU reduction at the receiver).
#[derive(Debug, Clone)]
pub(crate) enum Rpc {
    /// Requester wants a Shared copy; home RDMA-writes the chunk into the
    /// requester's cache region at `dst_off` then sends `FillShared`.
    ReadReq { chunk: ChunkId, dst_off: u64 },
    /// Requester wants exclusive (Dirty) ownership.
    WriteReq { chunk: ChunkId, dst_off: u64 },
    /// Requester wants to join the Operated set under operator `op`.
    OperateReq { chunk: ChunkId, op: u32 },
    /// Requester silently dropped its Shared copy.
    EvictNotice { chunk: ChunkId },
    /// Dirty data has been RDMA-written back to the home subarray; if
    /// `downgrade`, the sender keeps a Shared copy.
    WritebackNotice { chunk: ChunkId, downgrade: bool },
    /// Combined operands for reduction at home (empty = nothing to flush).
    OperandFlush {
        chunk: ChunkId,
        op: u32,
        data: Vec<u64>,
    },
    /// Home completed a read fill (data already written one-sided).
    FillShared { chunk: ChunkId },
    /// Home granted exclusive ownership (data already written one-sided).
    FillExclusive { chunk: ChunkId },
    /// Home granted Operated access under `op` (no data transfer — the
    /// requester initializes its operand buffer to the identity).
    GrantOperated { chunk: ChunkId, op: u32 },
    /// Drop your Shared copy and acknowledge.
    InvalidateReq { chunk: ChunkId },
    /// Acknowledgment of `InvalidateReq`.
    InvalidateAck { chunk: ChunkId },
    /// Write your Dirty data back and invalidate.
    RecallDirty { chunk: ChunkId },
    /// Write your Dirty data back but keep a Shared copy.
    DowngradeDirty { chunk: ChunkId },
    /// Flush your combined operands and invalidate.
    RecallOperated { chunk: ChunkId, op: u32 },
    /// Distributed lock protocol (home-managed, element granularity).
    LockAcquire {
        chunk: ChunkId,
        id: u64,
        kind: LockKind,
    },
    LockGrant {
        chunk: ChunkId,
        id: u64,
        kind: LockKind,
    },
    LockRelease {
        chunk: ChunkId,
        id: u64,
        kind: LockKind,
    },
}

impl Rpc {
    /// The chunk this message concerns — used by the Rx thread to route to
    /// the runtime thread owning the chunk.
    pub(crate) fn route_chunk(&self) -> ChunkId {
        match self {
            Rpc::ReadReq { chunk, .. }
            | Rpc::WriteReq { chunk, .. }
            | Rpc::OperateReq { chunk, .. }
            | Rpc::EvictNotice { chunk }
            | Rpc::WritebackNotice { chunk, .. }
            | Rpc::OperandFlush { chunk, .. }
            | Rpc::FillShared { chunk }
            | Rpc::FillExclusive { chunk }
            | Rpc::GrantOperated { chunk, .. }
            | Rpc::InvalidateReq { chunk }
            | Rpc::InvalidateAck { chunk }
            | Rpc::RecallDirty { chunk }
            | Rpc::DowngradeDirty { chunk }
            | Rpc::RecallOperated { chunk, .. }
            | Rpc::LockAcquire { chunk, .. }
            | Rpc::LockGrant { chunk, .. }
            | Rpc::LockRelease { chunk, .. } => *chunk,
        }
    }

    /// Wire payload size in bytes (the fabric adds a fixed header).
    pub(crate) fn payload_bytes(&self) -> u64 {
        match self {
            Rpc::OperandFlush { data, .. } => 16 + data.len() as u64 * 8,
            _ => 16,
        }
    }
}

/// A message on the wire.
#[derive(Debug, Clone)]
pub(crate) enum NetMsg {
    /// Unsequenced RPC: the fault-free fast path (reliable fabric assumed).
    Rpc { array: ArrayId, rpc: Rpc },
    /// Sequence-numbered RPC on the reliable channel (used when
    /// `ClusterConfig::fault` is set). Sequence numbers are per directed
    /// (sender → receiver) link, starting at 0; the receiver delivers in
    /// order, suppresses duplicates, and acknowledges cumulatively.
    SeqRpc { seq: u64, array: ArrayId, rpc: Rpc },
    /// Cumulative acknowledgment: "I have delivered every sequence number
    /// below `seq` from you". Unreliable itself — a lost ack is repaired by
    /// the retransmit it provokes.
    Ack { seq: u64 },
    /// Explicit lease renewal, sent by the reliability agent toward peers
    /// it has been idle with for `FaultConfig::heartbeat_ns`. Carries no
    /// state: receipt alone refreshes the receiver's lease on the sender.
    /// Unreliable and unsequenced — a lost heartbeat just delays renewal.
    Heartbeat,
    /// Quorum poll: "my retries toward `suspect` are exhausted — have you
    /// heard from it?" Unreliable; the suspector re-polls every
    /// `FaultConfig::suspect_poll_ns` until the vote resolves.
    SuspectQuery { suspect: NodeId },
    /// Vote answering a [`NetMsg::SuspectQuery`]: `alive` iff the voter's
    /// own lease on `suspect` is fresh. Unreliable; a lost vote is repaired
    /// by the next poll round.
    SuspectVote { suspect: NodeId, alive: bool },
    /// Tear down the Rx thread.
    Halt,
}

/// Requests an application thread submits to its runtime via the
/// local-request queue (Figure 2).
#[derive(Debug, Clone)]
pub(crate) enum LocalKind {
    Read { chunk: ChunkId },
    Write { chunk: ChunkId },
    Operate { chunk: ChunkId, op: u32 },
    LockAcquire { index: u64, kind: LockKind },
    LockRelease { index: u64, kind: LockKind },
}

impl LocalKind {
    /// Chunk used to route the request to a runtime thread.
    pub(crate) fn route_chunk(&self, chunk_size: usize) -> ChunkId {
        match self {
            LocalKind::Read { chunk }
            | LocalKind::Write { chunk }
            | LocalKind::Operate { chunk, .. } => *chunk,
            LocalKind::LockAcquire { index, .. } | LocalKind::LockRelease { index, .. } => {
                (*index as usize / chunk_size) as ChunkId
            }
        }
    }
}

/// A local request plus its completion token.
pub(crate) struct LocalReq {
    pub array: ArrayId,
    pub kind: LocalKind,
    pub waiter: WaitCell,
}

/// Everything a runtime thread can receive.
pub(crate) enum RtMsg {
    Local(LocalReq),
    Net {
        src: NodeId,
        array: ArrayId,
        rpc: Rpc,
    },
    /// Self-scheduled directory retry after a grace window expires.
    Retry {
        array: ArrayId,
        chunk: ChunkId,
    },
    /// The node's membership view confirmed `node` dead (quorum-backed):
    /// abort in-flight fills homed there, complete directory transients
    /// waiting on it, and wake lock waiters so application threads can
    /// observe the error. `epoch` is the membership epoch stamped on the
    /// death; consumers fence events whose stamp does not match the view
    /// (a stale declaration must not re-trigger recovery).
    PeerDown {
        node: NodeId,
        epoch: u64,
    },
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_chunk_covers_all_variants() {
        let msgs = [
            Rpc::ReadReq {
                chunk: 3,
                dst_off: 0,
            },
            Rpc::WriteReq {
                chunk: 3,
                dst_off: 0,
            },
            Rpc::OperateReq { chunk: 3, op: 0 },
            Rpc::EvictNotice { chunk: 3 },
            Rpc::WritebackNotice {
                chunk: 3,
                downgrade: false,
            },
            Rpc::OperandFlush {
                chunk: 3,
                op: 0,
                data: vec![],
            },
            Rpc::FillShared { chunk: 3 },
            Rpc::FillExclusive { chunk: 3 },
            Rpc::GrantOperated { chunk: 3, op: 0 },
            Rpc::InvalidateReq { chunk: 3 },
            Rpc::InvalidateAck { chunk: 3 },
            Rpc::RecallDirty { chunk: 3 },
            Rpc::DowngradeDirty { chunk: 3 },
            Rpc::RecallOperated { chunk: 3, op: 0 },
            Rpc::LockAcquire {
                chunk: 3,
                id: 9,
                kind: LockKind::Read,
            },
            Rpc::LockGrant {
                chunk: 3,
                id: 9,
                kind: LockKind::Write,
            },
            Rpc::LockRelease {
                chunk: 3,
                id: 9,
                kind: LockKind::Read,
            },
        ];
        for m in msgs {
            assert_eq!(m.route_chunk(), 3);
        }
    }

    #[test]
    fn operand_flush_payload_counts_data() {
        let m = Rpc::OperandFlush {
            chunk: 0,
            op: 0,
            data: vec![0; 512],
        };
        assert_eq!(m.payload_bytes(), 16 + 4096);
        assert_eq!(Rpc::FillShared { chunk: 0 }.payload_bytes(), 16);
    }

    #[test]
    fn lock_local_kind_routes_by_element_chunk() {
        let k = LocalKind::LockAcquire {
            index: 1_000,
            kind: LockKind::Write,
        };
        assert_eq!(k.route_chunk(512), 1);
        let k = LocalKind::Read { chunk: 7 };
        assert_eq!(k.route_chunk(512), 7);
    }
}
