//! Protocol messages: the RPCs of the extended cache coherence protocol and
//! the queue entries between the interface, runtime and communication
//! layers (Figure 2).

use dsim::WaitCell;
use rdma_fabric::NodeId;

/// Index of an array in the cluster registry.
pub(crate) type ArrayId = u32;
/// Global chunk index within an array.
pub(crate) type ChunkId = u32;

pub use crate::protocol::locks::LockKind;

/// Coherence RPCs exchanged between runtimes. Application data itself
/// travels by one-sided RDMA WRITE; these messages carry protocol control
/// (and combined operands, which require CPU reduction at the receiver).
#[derive(Debug, Clone)]
pub(crate) enum Rpc {
    /// Requester wants a Shared copy; home RDMA-writes the chunk into the
    /// requester's cache region at `dst_off` then sends `FillShared`.
    ReadReq { chunk: ChunkId, dst_off: u64 },
    /// Requester wants exclusive (Dirty) ownership.
    WriteReq { chunk: ChunkId, dst_off: u64 },
    /// Requester wants to join the Operated set under operator `op`.
    OperateReq { chunk: ChunkId, op: u32 },
    /// Requester silently dropped its Shared copy.
    EvictNotice { chunk: ChunkId },
    /// Dirty data has been RDMA-written back to the home subarray; if
    /// `downgrade`, the sender keeps a Shared copy.
    WritebackNotice { chunk: ChunkId, downgrade: bool },
    /// Combined operands for reduction at home (empty = nothing to flush).
    OperandFlush {
        chunk: ChunkId,
        op: u32,
        data: Vec<u64>,
    },
    /// Home completed a read fill (data already written one-sided).
    FillShared { chunk: ChunkId },
    /// Home granted exclusive ownership (data already written one-sided).
    FillExclusive { chunk: ChunkId },
    /// Home granted Operated access under `op` (no data transfer — the
    /// requester initializes its operand buffer to the identity).
    GrantOperated { chunk: ChunkId, op: u32 },
    /// Drop your Shared copy and acknowledge.
    InvalidateReq { chunk: ChunkId },
    /// Acknowledgment of `InvalidateReq`.
    InvalidateAck { chunk: ChunkId },
    /// Write your Dirty data back and invalidate.
    RecallDirty { chunk: ChunkId },
    /// Write your Dirty data back but keep a Shared copy.
    DowngradeDirty { chunk: ChunkId },
    /// Flush your combined operands and invalidate.
    RecallOperated { chunk: ChunkId, op: u32 },
    /// Distributed lock protocol (home-managed, element granularity).
    LockAcquire {
        chunk: ChunkId,
        id: u64,
        kind: LockKind,
    },
    LockGrant {
        chunk: ChunkId,
        id: u64,
        kind: LockKind,
    },
    LockRelease {
        chunk: ChunkId,
        id: u64,
        kind: LockKind,
    },
    /// Migration: the chunk image has been RDMA-written into the target's
    /// subarray slot (data travels one-sided, exactly like a fill); this
    /// notification carries the fence epoch (DESIGN.md §15).
    MigrateData { chunk: ChunkId, epoch: u64 },
    /// Migration: the target persisted (if durable) and accepted the chunk;
    /// the source may commit.
    MigrateAck { chunk: ChunkId, epoch: u64 },
    /// Migration: the source committed — the target is now the
    /// authoritative home and may start serving.
    MigrateCommit { chunk: ChunkId, epoch: u64 },
    /// The chunk's authoritative home moved to `new_home` under migration
    /// fence `epoch`. Broadcast by both ends at commit; receivers update
    /// their home map monotonically (highest epoch wins) and drop stale
    /// local rights.
    HomeMoved {
        chunk: ChunkId,
        new_home: NodeId,
        epoch: u64,
    },
    /// A request that reached the *old* home after migration committed,
    /// forwarded to the new home on the requester's behalf. `op` is
    /// meaningful only when `kind == 2` (Operate).
    MigrateForward {
        chunk: ChunkId,
        requester: NodeId,
        dst_off: u64,
        kind: u8,
        op: u32,
    },
}

impl Rpc {
    /// The chunk this message concerns — used by the Rx thread to route to
    /// the runtime thread owning the chunk.
    pub(crate) fn route_chunk(&self) -> ChunkId {
        match self {
            Rpc::ReadReq { chunk, .. }
            | Rpc::WriteReq { chunk, .. }
            | Rpc::OperateReq { chunk, .. }
            | Rpc::EvictNotice { chunk }
            | Rpc::WritebackNotice { chunk, .. }
            | Rpc::OperandFlush { chunk, .. }
            | Rpc::FillShared { chunk }
            | Rpc::FillExclusive { chunk }
            | Rpc::GrantOperated { chunk, .. }
            | Rpc::InvalidateReq { chunk }
            | Rpc::InvalidateAck { chunk }
            | Rpc::RecallDirty { chunk }
            | Rpc::DowngradeDirty { chunk }
            | Rpc::RecallOperated { chunk, .. }
            | Rpc::LockAcquire { chunk, .. }
            | Rpc::LockGrant { chunk, .. }
            | Rpc::LockRelease { chunk, .. }
            | Rpc::MigrateData { chunk, .. }
            | Rpc::MigrateAck { chunk, .. }
            | Rpc::MigrateCommit { chunk, .. }
            | Rpc::HomeMoved { chunk, .. }
            | Rpc::MigrateForward { chunk, .. } => *chunk,
        }
    }

    /// Wire payload size in bytes (the fabric adds a fixed header).
    pub(crate) fn payload_bytes(&self) -> u64 {
        match self {
            Rpc::OperandFlush { data, .. } => 16 + data.len() as u64 * 8,
            _ => 16,
        }
    }
}

/// A message on the wire.
#[derive(Debug, Clone)]
pub(crate) enum NetMsg {
    /// Unsequenced RPC: the fault-free fast path (reliable fabric assumed).
    Rpc { array: ArrayId, rpc: Rpc },
    /// Sequence-numbered RPC on the reliable channel (used when
    /// `ClusterConfig::fault` is set). Sequence numbers are per directed
    /// (sender → receiver) link, starting at 0; the receiver delivers in
    /// order, suppresses duplicates, and acknowledges cumulatively.
    SeqRpc { seq: u64, array: ArrayId, rpc: Rpc },
    /// Cumulative acknowledgment: "I have delivered every sequence number
    /// below `seq` from you". Unreliable itself — a lost ack is repaired by
    /// the retransmit it provokes.
    Ack { seq: u64 },
    /// Explicit lease renewal, sent by the reliability agent toward peers
    /// it has been idle with for `FaultConfig::heartbeat_ns`. Carries no
    /// state: receipt alone refreshes the receiver's lease on the sender.
    /// Unreliable and unsequenced — a lost heartbeat just delays renewal.
    Heartbeat,
    /// Quorum poll: "my retries toward `suspect` are exhausted — have you
    /// heard from it?" Unreliable; the suspector re-polls every
    /// `FaultConfig::suspect_poll_ns` until the vote resolves.
    SuspectQuery { suspect: NodeId },
    /// Vote answering a [`NetMsg::SuspectQuery`]: `alive` iff the voter's
    /// own lease on `suspect` is fresh. Unreliable; a lost vote is repaired
    /// by the next poll round.
    SuspectVote { suspect: NodeId, alive: bool },
    /// Tear down the Rx thread.
    Halt,
    /// A pre-provisioned `Joining` node announces itself to the live
    /// cluster (DESIGN.md §15). Survivors admit it into their own view,
    /// reset the reliable link both ways, and answer with a
    /// [`NetMsg::JoinVote`]. Unreliable; the joiner re-announces until it
    /// has a quorum of admits.
    JoinReq { node: NodeId },
    /// Vote answering a [`NetMsg::JoinReq`]: `admit` iff the voter's view
    /// now records `node` as Alive.
    JoinVote { node: NodeId, admit: bool },
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

/// Little-endian cursor for [`rdma_fabric::Wire::decode`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn lock_kind_to_u8(kind: LockKind) -> u8 {
    match kind {
        LockKind::Read => 0,
        LockKind::Write => 1,
    }
}

fn lock_kind_from_u8(b: u8) -> Option<LockKind> {
    match b {
        0 => Some(LockKind::Read),
        1 => Some(LockKind::Write),
        _ => None,
    }
}

impl Rpc {
    fn encode(&self, buf: &mut Vec<u8>) {
        let put_u32 = |buf: &mut Vec<u8>, v: u32| buf.extend_from_slice(&v.to_le_bytes());
        let put_u64 = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
        match self {
            Rpc::ReadReq { chunk, dst_off } => {
                buf.push(0);
                put_u32(buf, *chunk);
                put_u64(buf, *dst_off);
            }
            Rpc::WriteReq { chunk, dst_off } => {
                buf.push(1);
                put_u32(buf, *chunk);
                put_u64(buf, *dst_off);
            }
            Rpc::OperateReq { chunk, op } => {
                buf.push(2);
                put_u32(buf, *chunk);
                put_u32(buf, *op);
            }
            Rpc::EvictNotice { chunk } => {
                buf.push(3);
                put_u32(buf, *chunk);
            }
            Rpc::WritebackNotice { chunk, downgrade } => {
                buf.push(4);
                put_u32(buf, *chunk);
                buf.push(u8::from(*downgrade));
            }
            Rpc::OperandFlush { chunk, op, data } => {
                buf.push(5);
                put_u32(buf, *chunk);
                put_u32(buf, *op);
                put_u32(buf, data.len() as u32);
                for w in data {
                    put_u64(buf, *w);
                }
            }
            Rpc::FillShared { chunk } => {
                buf.push(6);
                put_u32(buf, *chunk);
            }
            Rpc::FillExclusive { chunk } => {
                buf.push(7);
                put_u32(buf, *chunk);
            }
            Rpc::GrantOperated { chunk, op } => {
                buf.push(8);
                put_u32(buf, *chunk);
                put_u32(buf, *op);
            }
            Rpc::InvalidateReq { chunk } => {
                buf.push(9);
                put_u32(buf, *chunk);
            }
            Rpc::InvalidateAck { chunk } => {
                buf.push(10);
                put_u32(buf, *chunk);
            }
            Rpc::RecallDirty { chunk } => {
                buf.push(11);
                put_u32(buf, *chunk);
            }
            Rpc::DowngradeDirty { chunk } => {
                buf.push(12);
                put_u32(buf, *chunk);
            }
            Rpc::RecallOperated { chunk, op } => {
                buf.push(13);
                put_u32(buf, *chunk);
                put_u32(buf, *op);
            }
            Rpc::LockAcquire { chunk, id, kind } => {
                buf.push(14);
                put_u32(buf, *chunk);
                put_u64(buf, *id);
                buf.push(lock_kind_to_u8(*kind));
            }
            Rpc::LockGrant { chunk, id, kind } => {
                buf.push(15);
                put_u32(buf, *chunk);
                put_u64(buf, *id);
                buf.push(lock_kind_to_u8(*kind));
            }
            Rpc::LockRelease { chunk, id, kind } => {
                buf.push(16);
                put_u32(buf, *chunk);
                put_u64(buf, *id);
                buf.push(lock_kind_to_u8(*kind));
            }
            Rpc::MigrateData { chunk, epoch } => {
                buf.push(17);
                put_u32(buf, *chunk);
                put_u64(buf, *epoch);
            }
            Rpc::MigrateAck { chunk, epoch } => {
                buf.push(18);
                put_u32(buf, *chunk);
                put_u64(buf, *epoch);
            }
            Rpc::MigrateCommit { chunk, epoch } => {
                buf.push(19);
                put_u32(buf, *chunk);
                put_u64(buf, *epoch);
            }
            Rpc::HomeMoved {
                chunk,
                new_home,
                epoch,
            } => {
                buf.push(20);
                put_u32(buf, *chunk);
                put_u32(buf, *new_home as u32);
                put_u64(buf, *epoch);
            }
            Rpc::MigrateForward {
                chunk,
                requester,
                dst_off,
                kind,
                op,
            } => {
                buf.push(21);
                put_u32(buf, *chunk);
                put_u32(buf, *requester as u32);
                put_u64(buf, *dst_off);
                buf.push(*kind);
                put_u32(buf, *op);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let tag = r.u8()?;
        let chunk = r.u32()?;
        Some(match tag {
            0 => Rpc::ReadReq {
                chunk,
                dst_off: r.u64()?,
            },
            1 => Rpc::WriteReq {
                chunk,
                dst_off: r.u64()?,
            },
            2 => Rpc::OperateReq {
                chunk,
                op: r.u32()?,
            },
            3 => Rpc::EvictNotice { chunk },
            4 => Rpc::WritebackNotice {
                chunk,
                downgrade: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            },
            5 => {
                let op = r.u32()?;
                let len = r.u32()? as usize;
                let mut data = Vec::with_capacity(len);
                for _ in 0..len {
                    data.push(r.u64()?);
                }
                Rpc::OperandFlush { chunk, op, data }
            }
            6 => Rpc::FillShared { chunk },
            7 => Rpc::FillExclusive { chunk },
            8 => Rpc::GrantOperated {
                chunk,
                op: r.u32()?,
            },
            9 => Rpc::InvalidateReq { chunk },
            10 => Rpc::InvalidateAck { chunk },
            11 => Rpc::RecallDirty { chunk },
            12 => Rpc::DowngradeDirty { chunk },
            13 => Rpc::RecallOperated {
                chunk,
                op: r.u32()?,
            },
            14 => Rpc::LockAcquire {
                chunk,
                id: r.u64()?,
                kind: lock_kind_from_u8(r.u8()?)?,
            },
            15 => Rpc::LockGrant {
                chunk,
                id: r.u64()?,
                kind: lock_kind_from_u8(r.u8()?)?,
            },
            16 => Rpc::LockRelease {
                chunk,
                id: r.u64()?,
                kind: lock_kind_from_u8(r.u8()?)?,
            },
            17 => Rpc::MigrateData {
                chunk,
                epoch: r.u64()?,
            },
            18 => Rpc::MigrateAck {
                chunk,
                epoch: r.u64()?,
            },
            19 => Rpc::MigrateCommit {
                chunk,
                epoch: r.u64()?,
            },
            20 => Rpc::HomeMoved {
                chunk,
                new_home: r.u32()? as NodeId,
                epoch: r.u64()?,
            },
            21 => Rpc::MigrateForward {
                chunk,
                requester: r.u32()? as NodeId,
                dst_off: r.u64()?,
                kind: r.u8()?,
                op: r.u32()?,
            },
            _ => return None,
        })
    }
}

impl rdma_fabric::Wire for NetMsg {
    /// Logical payload size. The values are exactly what the pre-trait
    /// `comm.rs` passed at each simulated send call site
    /// (`rpc.payload_bytes()` for RPCs, 8 for acks and membership messages,
    /// 0 for `Halt`), so the simulated backend charges the virtual wire
    /// identically.
    fn payload_bytes(&self) -> u64 {
        match self {
            NetMsg::Rpc { rpc, .. } | NetMsg::SeqRpc { rpc, .. } => rpc.payload_bytes(),
            NetMsg::Ack { .. } => 8,
            NetMsg::Heartbeat | NetMsg::SuspectQuery { .. } | NetMsg::SuspectVote { .. } => 8,
            NetMsg::JoinReq { .. } | NetMsg::JoinVote { .. } => 8,
            NetMsg::Halt => 0,
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            NetMsg::Rpc { array, rpc } => {
                buf.push(0);
                buf.extend_from_slice(&array.to_le_bytes());
                rpc.encode(buf);
            }
            NetMsg::SeqRpc { seq, array, rpc } => {
                buf.push(1);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&array.to_le_bytes());
                rpc.encode(buf);
            }
            NetMsg::Ack { seq } => {
                buf.push(2);
                buf.extend_from_slice(&seq.to_le_bytes());
            }
            NetMsg::Heartbeat => buf.push(3),
            NetMsg::SuspectQuery { suspect } => {
                buf.push(4);
                buf.extend_from_slice(&(*suspect as u32).to_le_bytes());
            }
            NetMsg::SuspectVote { suspect, alive } => {
                buf.push(5);
                buf.extend_from_slice(&(*suspect as u32).to_le_bytes());
                buf.push(u8::from(*alive));
            }
            NetMsg::Halt => buf.push(6),
            NetMsg::JoinReq { node } => {
                buf.push(7);
                buf.extend_from_slice(&(*node as u32).to_le_bytes());
            }
            NetMsg::JoinVote { node, admit } => {
                buf.push(8);
                buf.extend_from_slice(&(*node as u32).to_le_bytes());
                buf.push(u8::from(*admit));
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            0 => NetMsg::Rpc {
                array: r.u32()?,
                rpc: Rpc::decode(&mut r)?,
            },
            1 => NetMsg::SeqRpc {
                seq: r.u64()?,
                array: r.u32()?,
                rpc: Rpc::decode(&mut r)?,
            },
            2 => NetMsg::Ack { seq: r.u64()? },
            3 => NetMsg::Heartbeat,
            4 => NetMsg::SuspectQuery {
                suspect: r.u32()? as NodeId,
            },
            5 => NetMsg::SuspectVote {
                suspect: r.u32()? as NodeId,
                alive: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            },
            6 => NetMsg::Halt,
            7 => NetMsg::JoinReq {
                node: r.u32()? as NodeId,
            },
            8 => NetMsg::JoinVote {
                node: r.u32()? as NodeId,
                admit: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            },
            _ => return None,
        };
        r.done().then_some(msg)
    }
}

/// Requests an application thread submits to its runtime via the
/// local-request queue (Figure 2).
#[derive(Debug, Clone)]
pub(crate) enum LocalKind {
    Read { chunk: ChunkId },
    Write { chunk: ChunkId },
    Operate { chunk: ChunkId, op: u32 },
    LockAcquire { index: u64, kind: LockKind },
    LockRelease { index: u64, kind: LockKind },
}

impl LocalKind {
    /// Chunk used to route the request to a runtime thread.
    pub(crate) fn route_chunk(&self, chunk_size: usize) -> ChunkId {
        match self {
            LocalKind::Read { chunk }
            | LocalKind::Write { chunk }
            | LocalKind::Operate { chunk, .. } => *chunk,
            LocalKind::LockAcquire { index, .. } | LocalKind::LockRelease { index, .. } => {
                (*index as usize / chunk_size) as ChunkId
            }
        }
    }
}

/// A local request plus its completion token.
pub(crate) struct LocalReq {
    pub array: ArrayId,
    pub kind: LocalKind,
    pub waiter: WaitCell,
}

/// Everything a runtime thread can receive.
pub(crate) enum RtMsg {
    Local(LocalReq),
    Net {
        src: NodeId,
        array: ArrayId,
        rpc: Rpc,
    },
    /// Self-scheduled directory retry after a grace window expires.
    Retry {
        array: ArrayId,
        chunk: ChunkId,
    },
    /// The node's membership view confirmed `node` dead (quorum-backed):
    /// abort in-flight fills homed there, complete directory transients
    /// waiting on it, and wake lock waiters so application threads can
    /// observe the error. `epoch` is the membership epoch stamped on the
    /// death; consumers fence events whose stamp does not match the view
    /// (a stale declaration must not re-trigger recovery).
    PeerDown {
        node: NodeId,
        epoch: u64,
    },
    /// A previously-dead `node` restarted and was re-admitted by the
    /// membership view at bumped `epoch` (DESIGN.md §14): un-fence its
    /// identity in home machines and drop all local rights on chunks homed
    /// there — the restarted directory is cold and no longer remembers
    /// granting them.
    PeerRestarted {
        node: NodeId,
        epoch: u64,
    },
    /// Begin migrating `chunk` of `array` (which this runtime thread
    /// currently homes) to node `to`. Injected by `Cluster::migrate_chunk`;
    /// the directory machine fences the chunk, recalls outstanding rights,
    /// transfers the image and hands authority over (DESIGN.md §15).
    Migrate {
        array: ArrayId,
        chunk: ChunkId,
        to: NodeId,
    },
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_chunk_covers_all_variants() {
        let msgs = [
            Rpc::ReadReq {
                chunk: 3,
                dst_off: 0,
            },
            Rpc::WriteReq {
                chunk: 3,
                dst_off: 0,
            },
            Rpc::OperateReq { chunk: 3, op: 0 },
            Rpc::EvictNotice { chunk: 3 },
            Rpc::WritebackNotice {
                chunk: 3,
                downgrade: false,
            },
            Rpc::OperandFlush {
                chunk: 3,
                op: 0,
                data: vec![],
            },
            Rpc::FillShared { chunk: 3 },
            Rpc::FillExclusive { chunk: 3 },
            Rpc::GrantOperated { chunk: 3, op: 0 },
            Rpc::InvalidateReq { chunk: 3 },
            Rpc::InvalidateAck { chunk: 3 },
            Rpc::RecallDirty { chunk: 3 },
            Rpc::DowngradeDirty { chunk: 3 },
            Rpc::RecallOperated { chunk: 3, op: 0 },
            Rpc::LockAcquire {
                chunk: 3,
                id: 9,
                kind: LockKind::Read,
            },
            Rpc::LockGrant {
                chunk: 3,
                id: 9,
                kind: LockKind::Write,
            },
            Rpc::LockRelease {
                chunk: 3,
                id: 9,
                kind: LockKind::Read,
            },
            Rpc::MigrateData { chunk: 3, epoch: 1 },
            Rpc::MigrateAck { chunk: 3, epoch: 1 },
            Rpc::MigrateCommit { chunk: 3, epoch: 1 },
            Rpc::HomeMoved {
                chunk: 3,
                new_home: 2,
                epoch: 1,
            },
            Rpc::MigrateForward {
                chunk: 3,
                requester: 2,
                dst_off: 0,
                kind: 0,
                op: 0,
            },
        ];
        for m in msgs {
            assert_eq!(m.route_chunk(), 3);
        }
    }

    #[test]
    fn operand_flush_payload_counts_data() {
        let m = Rpc::OperandFlush {
            chunk: 0,
            op: 0,
            data: vec![0; 512],
        };
        assert_eq!(m.payload_bytes(), 16 + 4096);
        assert_eq!(Rpc::FillShared { chunk: 0 }.payload_bytes(), 16);
    }

    #[test]
    fn wire_roundtrip_covers_every_message() {
        use rdma_fabric::Wire;
        let rpcs = [
            Rpc::ReadReq {
                chunk: 3,
                dst_off: 1 << 40,
            },
            Rpc::WriteReq {
                chunk: 4,
                dst_off: 7,
            },
            Rpc::OperateReq { chunk: 5, op: 2 },
            Rpc::EvictNotice { chunk: 6 },
            Rpc::WritebackNotice {
                chunk: 7,
                downgrade: true,
            },
            Rpc::OperandFlush {
                chunk: 8,
                op: 1,
                data: vec![u64::MAX, 0, 42],
            },
            Rpc::OperandFlush {
                chunk: 8,
                op: 1,
                data: vec![],
            },
            Rpc::FillShared { chunk: 9 },
            Rpc::FillExclusive { chunk: 10 },
            Rpc::GrantOperated { chunk: 11, op: 3 },
            Rpc::InvalidateReq { chunk: 12 },
            Rpc::InvalidateAck { chunk: 13 },
            Rpc::RecallDirty { chunk: 14 },
            Rpc::DowngradeDirty { chunk: 15 },
            Rpc::RecallOperated { chunk: 16, op: 4 },
            Rpc::LockAcquire {
                chunk: 17,
                id: 99,
                kind: LockKind::Read,
            },
            Rpc::LockGrant {
                chunk: 18,
                id: 100,
                kind: LockKind::Write,
            },
            Rpc::LockRelease {
                chunk: 19,
                id: 101,
                kind: LockKind::Read,
            },
            Rpc::MigrateData {
                chunk: 20,
                epoch: u64::MAX - 3,
            },
            Rpc::MigrateAck {
                chunk: 21,
                epoch: 5,
            },
            Rpc::MigrateCommit {
                chunk: 22,
                epoch: 6,
            },
            Rpc::HomeMoved {
                chunk: 23,
                new_home: 4,
                epoch: 7,
            },
            Rpc::MigrateForward {
                chunk: 24,
                requester: 1,
                dst_off: 1 << 33,
                kind: 2,
                op: 9,
            },
        ];
        let mut msgs: Vec<NetMsg> = Vec::new();
        for rpc in rpcs {
            msgs.push(NetMsg::Rpc {
                array: 2,
                rpc: rpc.clone(),
            });
            msgs.push(NetMsg::SeqRpc {
                seq: u64::MAX - 1,
                array: 3,
                rpc,
            });
        }
        msgs.push(NetMsg::Ack { seq: 12345 });
        msgs.push(NetMsg::Heartbeat);
        msgs.push(NetMsg::SuspectQuery { suspect: 2 });
        msgs.push(NetMsg::SuspectVote {
            suspect: 1,
            alive: true,
        });
        msgs.push(NetMsg::Halt);
        msgs.push(NetMsg::JoinReq { node: 3 });
        msgs.push(NetMsg::JoinVote {
            node: 3,
            admit: true,
        });
        msgs.push(NetMsg::JoinVote {
            node: 2,
            admit: false,
        });
        for msg in msgs {
            let mut buf = Vec::new();
            msg.encode(&mut buf);
            let back = NetMsg::decode(&buf).expect("decode");
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
        // Truncated and trailing-garbage inputs must fail, not panic.
        let mut buf = Vec::new();
        NetMsg::Ack { seq: 7 }.encode(&mut buf);
        assert!(NetMsg::decode(&buf[..buf.len() - 1]).is_none());
        buf.push(0);
        assert!(NetMsg::decode(&buf).is_none());
        assert!(NetMsg::decode(&[]).is_none());
        assert!(NetMsg::decode(&[250]).is_none());
    }

    #[test]
    fn wire_payload_bytes_match_pre_trait_call_sites() {
        use rdma_fabric::Wire;
        let rpc = Rpc::FillShared { chunk: 0 };
        assert_eq!(
            NetMsg::Rpc {
                array: 0,
                rpc: rpc.clone()
            }
            .payload_bytes(),
            16
        );
        assert_eq!(
            NetMsg::SeqRpc {
                seq: 0,
                array: 0,
                rpc: Rpc::OperandFlush {
                    chunk: 0,
                    op: 0,
                    data: vec![0; 4]
                }
            }
            .payload_bytes(),
            16 + 32
        );
        assert_eq!(NetMsg::Ack { seq: 0 }.payload_bytes(), 8);
        assert_eq!(NetMsg::Heartbeat.payload_bytes(), 8);
        assert_eq!(NetMsg::SuspectQuery { suspect: 0 }.payload_bytes(), 8);
        assert_eq!(
            NetMsg::SuspectVote {
                suspect: 0,
                alive: false
            }
            .payload_bytes(),
            8
        );
        assert_eq!(NetMsg::JoinReq { node: 0 }.payload_bytes(), 8);
        assert_eq!(
            NetMsg::JoinVote {
                node: 0,
                admit: true
            }
            .payload_bytes(),
            8
        );
        assert_eq!(NetMsg::Halt.payload_bytes(), 0);
    }

    #[test]
    fn lock_local_kind_routes_by_element_chunk() {
        let k = LocalKind::LockAcquire {
            index: 1_000,
            kind: LockKind::Write,
        };
        assert_eq!(k.route_chunk(512), 1);
        let k = LocalKind::Read { chunk: 7 };
        assert_eq!(k.route_chunk(512), 7);
    }
}
