//! Chunk→runtime-thread placement and per-thread cache-pool sizing.
//!
//! Every chunk of every array is serviced by exactly one runtime thread
//! per node, and every layer that routes work to a runtime thread — the
//! runtime executor itself, the comm Rx dispatch, and cluster bring-up —
//! must agree on the mapping. This module is that single source of truth.
//!
//! The mapping is a *rotated* round-robin: within one array, consecutive
//! chunks still stripe perfectly across the threads (sequential scans load
//! every thread equally), but the stripe's phase is a hash of the
//! `ArrayId`. A bare `chunk % threads` would park chunk 0 of *every*
//! array on thread 0, so multi-array workloads hot-spot the low-index
//! threads; the rotation spreads the low chunks of different arrays over
//! different threads while keeping the per-array balance exact.

use crate::msg::{ArrayId, ChunkId};

/// The cluster-wide chunk→runtime-thread mapping (identical on every
/// node) plus the derived per-thread cache-pool split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Placement {
    threads: usize,
}

/// Finalizer of splitmix64 — a cheap, high-quality 64-bit mixer. We only
/// need the *phase* of each array's stripe to look uncorrelated across
/// arrays; any avalanche-complete mixer does.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl Placement {
    pub(crate) fn new(threads: usize) -> Self {
        assert!(threads > 0, "placement needs at least one runtime thread");
        Self { threads }
    }

    /// Runtime thread responsible for `chunk` of `array` (same index on
    /// every node). Rotated round-robin: exact striping within an array,
    /// array-dependent phase across arrays.
    #[inline]
    pub(crate) fn rt_index(&self, array: ArrayId, chunk: ChunkId) -> usize {
        if self.threads == 1 {
            return 0;
        }
        let phase = mix64(array as u64) % self.threads as u64;
        ((chunk as u64).wrapping_add(phase) % self.threads as u64) as usize
    }

    /// Split `capacity_lines` cachelines into one pool per runtime thread.
    /// The remainder is distributed one line each to the lowest-index
    /// pools, so the sum is exactly `capacity_lines` and no pool differs
    /// from another by more than one line. Requires
    /// `capacity_lines >= threads` (validated by `ClusterConfig`), so
    /// every pool gets at least one line.
    pub(crate) fn pool_lines(&self, capacity_lines: usize) -> Vec<u32> {
        debug_assert!(
            capacity_lines >= self.threads,
            "config validation must reject capacity_lines < runtime_threads"
        );
        let per = (capacity_lines / self.threads) as u32;
        let rem = capacity_lines % self.threads;
        (0..self.threads)
            .map(|i| per + u32::from(i < rem))
            .collect()
    }

    /// `(base, lines)` of each pool: the cumulative layout of
    /// [`Placement::pool_lines`] over the node's cache region. The ranges
    /// are disjoint and cover `0..capacity_lines` exactly.
    pub(crate) fn pool_ranges(&self, capacity_lines: usize) -> Vec<(u32, u32)> {
        let mut base = 0u32;
        self.pool_lines(capacity_lines)
            .into_iter()
            .map(|lines| {
                let r = (base, lines);
                base += lines;
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_maps_everything_to_zero() {
        let p = Placement::new(1);
        for array in 0..8 {
            for chunk in 0..64 {
                assert_eq!(p.rt_index(array, chunk), 0);
            }
        }
    }

    #[test]
    fn consecutive_chunks_stripe_exactly() {
        // Within one array the mapping is a perfect round-robin: any
        // window of `threads` consecutive chunks hits every thread once.
        for threads in [2, 3, 4, 7] {
            let p = Placement::new(threads);
            for array in 0..16 {
                for start in 0..32u32 {
                    let mut seen = vec![false; threads];
                    for c in start..start + threads as u32 {
                        seen[p.rt_index(array, c)] = true;
                    }
                    assert!(
                        seen.iter().all(|&s| s),
                        "array {array} window at {start} missed a thread"
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_zero_spreads_across_arrays() {
        // The whole point of the rotation: chunk 0 of different arrays
        // must not all land on thread 0.
        let p = Placement::new(4);
        let hits: Vec<usize> = (0..64).map(|array| p.rt_index(array, 0)).collect();
        for t in 0..4 {
            assert!(
                hits.contains(&t),
                "no array's chunk 0 landed on thread {t}: {hits:?}"
            );
        }
    }

    #[test]
    fn mapping_is_deterministic() {
        let a = Placement::new(4);
        let b = Placement::new(4);
        for array in 0..8 {
            for chunk in 0..128 {
                assert_eq!(a.rt_index(array, chunk), b.rt_index(array, chunk));
            }
        }
    }

    #[test]
    fn pool_lines_distribute_remainder() {
        let p = Placement::new(4);
        // 10 = 3+3+2+2: remainder 2 goes to the first two pools.
        assert_eq!(p.pool_lines(10), vec![3, 3, 2, 2]);
        // Exact division: all equal.
        assert_eq!(p.pool_lines(8), vec![2, 2, 2, 2]);
        // Degenerate minimum: one line each.
        assert_eq!(p.pool_lines(4), vec![1, 1, 1, 1]);
    }

    #[test]
    fn pool_ranges_tile_the_region_exactly() {
        for threads in [1, 2, 3, 4, 5] {
            let p = Placement::new(threads);
            for cap in [threads, threads + 1, 64, 100, 257] {
                let ranges = p.pool_ranges(cap);
                assert_eq!(ranges.len(), threads);
                let mut next = 0u32;
                for &(base, lines) in &ranges {
                    assert_eq!(base, next, "pools must be contiguous");
                    assert!(lines > 0, "every pool gets at least one line");
                    next += lines;
                }
                assert_eq!(
                    next as usize, cap,
                    "pools must cover the region exactly (threads={threads}, cap={cap})"
                );
            }
        }
    }
}
