//! Deterministic fault replay: the same `ClusterConfig` with the same
//! `FaultPlan` seed must reproduce the run *bit-identically* — every node's
//! final statistics snapshot and the final virtual time — because every
//! source of nondeterminism (jitter, drops, stalls, scheduling) is derived
//! from seeded streams inside the simulation.

use darray::{
    ArrayOptions, AsymmetricLoss, Cluster, ClusterConfig, FaultConfig, FaultPlan, NetConfig,
    NodeStatsSnapshot, Sim, SimConfig, VTime,
};

fn faulty_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    plan.jitter_ns = 400;
    plan.drop_ppm = 20_000;
    plan.stall_ppm = 1_000;
    plan.stall_ns = (5_000, 20_000);
    plan
}

/// Run a small mixed workload under faults; return every node's final stats
/// and the final virtual time.
fn run_once(cfg: ClusterConfig) -> (Vec<NodeStatsSnapshot>, VTime) {
    let nodes = cfg.nodes;
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(2048, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let stride = a.len() / env.nodes;
            let base = env.node * stride;
            for i in 0..64 {
                a.set(ctx, base + i, (env.node * 1000 + i) as u64);
            }
            for i in 0..64 {
                a.apply(ctx, (base + stride + i) % a.len(), add, 1);
            }
            env.barrier(ctx);
            let mut sum = 0u64;
            for i in 0..64 {
                sum += a.get(ctx, base + i);
            }
            assert!(sum > 0);
        });
        let snaps: Vec<NodeStatsSnapshot> = (0..nodes).map(|n| cluster.stats(n)).collect();
        cluster.shutdown(ctx);
        (snaps, ctx.now())
    })
}

#[test]
fn same_seed_replays_bit_identically() {
    let configs: Vec<ClusterConfig> = vec![
        {
            let mut c = ClusterConfig::with_nodes(2);
            c.fault = Some(FaultConfig::new(faulty_plan(0xD15EA5E)));
            c
        },
        {
            let mut c = ClusterConfig::with_nodes(3);
            c.runtime_threads = 2;
            c.net = NetConfig::default();
            c.fault = Some(FaultConfig::new(faulty_plan(42)));
            c
        },
    ];
    for cfg in configs {
        let (snaps_a, t_a) = run_once(cfg.clone());
        let (snaps_b, t_b) = run_once(cfg.clone());
        assert_eq!(snaps_a, snaps_b, "stats diverged for {} nodes", cfg.nodes);
        assert_eq!(
            t_a, t_b,
            "final virtual time diverged for {} nodes",
            cfg.nodes
        );
    }
}

/// Run a crash-tolerant workload: node 1 of 3 dies mid-run while every
/// node keeps issuing `try_*` operations against chunks spread over all
/// homes (tolerating `NodeUnavailable`), plus a round of lock-protected
/// updates so orphaned-lock reclamation runs too. No barriers after the
/// crash point — a dead node can never arrive.
fn run_crash_once(cfg: ClusterConfig) -> (Vec<NodeStatsSnapshot>, VTime) {
    let nodes = cfg.nodes;
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(3 * 4096, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let stride = a.len() / env.nodes;
            // Phase 1 (pre-crash): everyone writes its own stripe and
            // applies into the next node's stripe.
            for i in 0..48 {
                let _ = a.try_set(ctx, env.node * stride + i, (env.node * 100 + i) as u64);
                let _ = a.try_apply(ctx, ((env.node + 1) % env.nodes) * stride + i, add, 1);
            }
            // Straddle the crash instant.
            ctx.sleep(2_500_000);
            // Phase 2 (post-crash): survivors keep going; operations whose
            // home died surface NodeUnavailable instead of hanging, and a
            // lock round exercises reclamation of the dead node's locks.
            for i in 0..32 {
                let idx = (env.node * stride + 7 * i) % a.len();
                if a.try_wlock(ctx, idx).is_ok() {
                    let v = a.try_get(ctx, idx).unwrap_or(0);
                    let _ = a.try_set(ctx, idx, v + 1);
                    a.unlock(ctx, idx);
                }
                // An uncached chunk homed on node 1: survivors detect the
                // crash here; the error (not a hang) is the contract.
                let _ = a.try_get(ctx, stride + 2048 + 64 * i);
            }
        });
        let snaps: Vec<NodeStatsSnapshot> = (0..nodes).map(|n| cluster.stats(n)).collect();
        cluster.shutdown(ctx);
        (snaps, ctx.now())
    })
}

#[test]
fn mid_run_crash_replays_bit_identically() {
    let mk = || {
        let mut plan = faulty_plan(0xFA11);
        plan.crash_at = vec![(1, 1_500_000)];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut c = ClusterConfig::with_nodes(3);
        c.fault = Some(fc);
        c
    };
    let (snaps_a, t_a) = run_crash_once(mk());
    let (snaps_b, t_b) = run_crash_once(mk());
    assert_eq!(snaps_a, snaps_b, "stats diverged across same-seed replays");
    assert_eq!(t_a, t_b, "final virtual time diverged");
    // The run must actually have exercised the recovery path: survivors
    // declared the crashed node dead (it cannot declare anyone itself —
    // fail-stop cuts its network, so count only nodes 0 and 2).
    let survivors_peers_down: u64 = snaps_a[0].peers_down + snaps_a[2].peers_down;
    assert!(
        survivors_peers_down >= 2,
        "both survivors should declare node 1 down: {snaps_a:?}"
    );
}

/// A temporarily-severed link drives node 2 through the full
/// suspect -> refute -> re-admit cycle (node 1's fresh lease vetoes every
/// death declaration, and the parked traffic replays on re-admission). The
/// whole dance — suspicion timing, quorum polls, ballots, replayed
/// sequence numbers — must come out of the seeded streams, so two runs are
/// bit-identical.
fn run_refute_once(seed: u64) -> (Vec<NodeStatsSnapshot>, VTime) {
    let mut plan = FaultPlan::new(seed);
    plan.jitter_ns = 300;
    plan.asym_loss = vec![
        AsymmetricLoss {
            from: 0,
            to: 2,
            drop_ppm: 1_000_000,
            from_ns: 300_000,
            until_ns: 1_500_000,
        },
        AsymmetricLoss {
            from: 2,
            to: 0,
            drop_ppm: 1_000_000,
            from_ns: 300_000,
            until_ns: 1_500_000,
        },
    ];
    let mut fc = FaultConfig::new(plan);
    fc.rpc_timeout_ns = 20_000;
    fc.max_retries = 2;
    fc.lease_ns = 100_000;
    fc.heartbeat_ns = 25_000;
    fc.suspect_poll_ns = 10_000;
    fc.suspect_poll_rounds = 3;
    let mut cfg = ClusterConfig::with_nodes(3);
    cfg.fault = Some(fc);
    let nodes = cfg.nodes;
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(3 * 512, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            match env.node {
                2 => {
                    // Dirty a node-0-homed chunk, then go quiet behind the
                    // severed link.
                    a.set(ctx, 8, 42);
                    ctx.sleep(1_800_000);
                    assert_eq!(a.get(ctx, 8), 42);
                }
                0 => {
                    ctx.sleep(500_000);
                    // The recall of node 2's dirty copy parks on suspicion
                    // and replays on refutation until the link heals.
                    assert_eq!(a.get(ctx, 8), 42);
                }
                _ => {}
            }
        });
        let snaps: Vec<NodeStatsSnapshot> = (0..nodes).map(|n| cluster.stats(n)).collect();
        cluster.shutdown(ctx);
        (snaps, ctx.now())
    })
}

#[test]
fn suspect_refute_readmit_replays_bit_identically() {
    let (snaps_a, t_a) = run_refute_once(0x5EED);
    let (snaps_b, t_b) = run_refute_once(0x5EED);
    assert_eq!(snaps_a, snaps_b, "stats diverged across same-seed replays");
    assert_eq!(t_a, t_b, "final virtual time diverged");
    // The run must actually have traversed the cycle: at least one
    // suspicion, every one of them refuted, and nobody declared dead.
    assert!(
        snaps_a[0].suspicions >= 1,
        "node 0 never suspected node 2: {snaps_a:?}"
    );
    assert_eq!(
        snaps_a[0].refutations, snaps_a[0].suspicions,
        "an unrefuted suspicion remained: {snaps_a:?}"
    );
    for s in &snaps_a {
        assert_eq!((s.peers_down, s.confirmed_deaths), (0, 0), "{s:?}");
    }
}

#[test]
fn different_seeds_diverge() {
    let mut c1 = ClusterConfig::with_nodes(2);
    c1.fault = Some(FaultConfig::new(faulty_plan(1)));
    let mut c2 = c1.clone();
    c2.fault = Some(FaultConfig::new(faulty_plan(2)));
    let (_, t1) = run_once(c1);
    let (_, t2) = run_once(c2);
    // Virtually certain with jitter on every message; equality would mean
    // the seed is being ignored somewhere.
    assert_ne!(t1, t2, "fault seeds 1 and 2 produced identical timing");
}
