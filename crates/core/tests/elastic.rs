//! Elastic membership end-to-end (DESIGN.md §15): bring a spare node into
//! a live cluster with `Cluster::join_peer`, re-home chunks onto it with
//! `Cluster::migrate_chunk`, and keep serving coherent reads and writes
//! for the migrated chunks throughout — in the simulator, under the
//! reliable channel, and (in `tcp_parity.rs`) over real sockets.

use std::sync::{Arc, Mutex};

use darray::{
    ArrayOptions, Cluster, ClusterConfig, ConfigError, DArrayError, DurabilityPolicy, FaultConfig,
    FaultPlan, PeerHealth, Sim, SimConfig,
};

const LEN: usize = 3072;
const NODES: usize = 3;
const CHUNK: usize = 512;

fn elastic_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::with_nodes(NODES);
    cfg.elastic = true;
    cfg.initial_nodes = Some(2);
    cfg
}

/// The whole lifecycle, fault-free: 2 active nodes + 1 spare; write while
/// static, join the spare, migrate two chunks onto it, and verify every
/// node reads the same bytes from the migrated chunks — then write *through*
/// the new home and read back from the old one.
#[test]
fn join_then_migrate_serves_reads_and_writes() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let cluster = Cluster::new(ctx, elastic_config());
        let arr = cluster.alloc_with::<u64>(LEN, ArrayOptions::default(), |i| i as u64);

        // Spares home nothing: the even partition covers the active prefix.
        assert_eq!(cluster.peer_health(0, 2), PeerHealth::Joining);
        assert_eq!(cluster.peer_health(2, 2), PeerHealth::Joining);

        // Phase 1: active nodes dirty chunk 0 (homed on node 0) so the
        // migration has a non-pristine image to carry.
        let arr1 = arr.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            if env.node < 2 {
                let a = arr1.on(env.node);
                for k in 0..8 {
                    let idx = env.node * 8 + k;
                    a.set(ctx, idx, 10_000 + idx as u64);
                }
            }
        });

        // Join the spare: every view admits it.
        assert_eq!(cluster.join_peer(ctx, 2), NODES);
        for m in 0..NODES {
            assert_eq!(
                cluster.peer_health(m, 2),
                PeerHealth::Alive,
                "view {m} did not admit the joiner"
            );
        }
        // Idempotent: a second join admits nothing.
        assert_eq!(cluster.join_peer(ctx, 2), 0);

        // Migrate chunk 0 (dirtied above, home 0) and chunk 3 (home 1,
        // untouched) onto the joiner.
        cluster.migrate_chunk(ctx, &arr, 0, 2);
        cluster.migrate_chunk(ctx, &arr, 3, 2);
        // Re-homing an already-homed chunk is a no-op.
        cluster.migrate_chunk(ctx, &arr, 0, 2);

        // Phase 2: every node reads the migrated chunks (the new home
        // serves the fills); the joiner writes through its own homed chunk
        // and an old-home node reads the write back coherently.
        let arr2 = arr.clone();
        let flags = Arc::new(Mutex::new(vec![false; NODES]));
        let fl = flags.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr2.on(env.node);
            for k in 0..8 {
                assert_eq!(
                    a.get(ctx, k),
                    10_000 + k as u64,
                    "node {} lost a pre-migration write in chunk 0",
                    env.node
                );
                assert_eq!(a.get(ctx, 8 + k), 10_008 + k as u64);
            }
            // Chunk 3's init values moved intact.
            assert_eq!(a.get(ctx, 3 * CHUNK + 7), (3 * CHUNK + 7) as u64);
            env.barrier(ctx);
            if env.node == 2 {
                // Write through the adopted chunk...
                a.set(ctx, 3 * CHUNK + 9, 777);
            }
            env.barrier(ctx);
            if env.node == 1 {
                // ...and its former home reads it back coherently.
                assert_eq!(a.get(ctx, 3 * CHUNK + 9), 777);
            }
            fl.lock().unwrap()[env.node] = true;
        });
        assert!(flags.lock().unwrap().iter().all(|&f| f));

        // The move is visible in the counters, on the right nodes.
        let (s0, s1, s2) = (cluster.stats(0), cluster.stats(1), cluster.stats(2));
        assert_eq!(s0.migrations_out, 1, "{s0:?}");
        assert_eq!(s1.migrations_out, 1, "{s1:?}");
        assert_eq!(s2.migrations_in, 2, "{s2:?}");
        assert_eq!(s2.migrations_out, 0);
        cluster.shutdown(ctx);
    });
}

/// The same lifecycle under the reliable channel (benign fault plan): the
/// join runs as a real vote — announce, per-survivor admission + link
/// bring-up, quorum tally — and migration RPCs ride the sequenced,
/// acknowledged, retransmitted path.
#[test]
fn join_and_migrate_under_reliable_channel() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut cfg = elastic_config();
        cfg.fault = Some(FaultConfig::new(FaultPlan::new(1)));
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc_with::<u64>(LEN, ArrayOptions::default(), |i| i as u64);

        let arr1 = arr.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            if env.node == 0 {
                let a = arr1.on(env.node);
                for k in 0..8 {
                    a.set(ctx, k, 500 + k as u64);
                }
            }
        });

        assert_eq!(cluster.join_peer(ctx, 2), NODES);
        cluster.migrate_chunk(ctx, &arr, 0, 2);

        let arr2 = arr.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr2.on(env.node);
            for k in 0..8 {
                assert_eq!(a.get(ctx, k), 500 + k as u64);
            }
            if env.node == 1 {
                a.set(ctx, 9, 901);
                assert_eq!(a.get(ctx, 9), 901);
            }
        });
        let s2 = cluster.stats(2);
        assert_eq!(s2.migrations_in, 1, "{s2:?}");
        cluster.shutdown(ctx);
    });
}

/// Arrays allocated *after* a join include the joined node in their even
/// partition; arrays allocated before it keep their prefix partition (plus
/// whatever migrations moved).
#[test]
fn arrays_allocated_after_join_span_the_joined_node() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let cluster = Cluster::new(ctx, elastic_config());
        let before = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        assert_eq!(cluster.join_peer(ctx, 2), NODES);
        let after = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let b = before.on(env.node);
            let a = after.on(env.node);
            // Pre-join array: spare homes nothing.
            assert!((0..LEN).all(|i| b.home_of(i) < 2));
            // Post-join array: the joined node homes its even share.
            assert!((0..LEN).any(|i| a.home_of(i) == 2));
            // Both stay fully serviceable from every node.
            if env.node == 2 {
                b.set(ctx, 0, 5);
                a.set(ctx, LEN - 1, 6);
            }
            env.barrier(ctx);
            assert_eq!(b.get(ctx, 0), 5);
            assert_eq!(a.get(ctx, LEN - 1), 6);
        });
        cluster.shutdown(ctx);
    });
}

/// Durable elastic cluster: writes acked through the *migrated* home's
/// persist-before-ack path survive a full cluster restart over the same
/// log directory, even though the surviving image lives in the new home's
/// log, not the layout home's.
#[test]
fn migrated_chunk_persists_across_cluster_restart() {
    let dir = {
        let mut p = std::env::temp_dir();
        p.push(format!("darray-elastic-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    };
    let mk_cfg = |dir: &std::path::PathBuf| {
        let mut cfg = elastic_config();
        cfg.durability.policy = DurabilityPolicy::Writethrough;
        cfg.durability.dir = Some(dir.clone());
        cfg
    };

    // Incarnation 1: join, migrate chunk 0 to the joiner, write through
    // the new home, recall so the write persists at the new home.
    let cfg = mk_cfg(&dir);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        assert_eq!(cluster.join_peer(ctx, 2), NODES);
        cluster.migrate_chunk(ctx, &arr, 0, 2);
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 0 {
                // Dirty the migrated chunk remotely...
                for k in 0..8 {
                    a.set(ctx, k, 40_000 + k as u64);
                }
            }
            env.barrier(ctx);
            if env.node == 2 {
                // ...and recall it at the new home: persist-before-ack puts
                // the image in node 2's log before this read returns.
                for k in 0..8 {
                    assert_eq!(a.get(ctx, k), 40_000 + k as u64);
                }
            }
        });
        let s2 = cluster.stats(2);
        assert!(s2.flush_persists >= 1, "new home never persisted: {s2:?}");
        cluster.shutdown(ctx);
    });

    // Incarnation 2: same directory. The acked writes come back even
    // though chunk 0's layout home (node 0) never logged them.
    let cfg = mk_cfg(&dir);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node < 2 {
                for k in 0..8 {
                    assert_eq!(
                        a.get(ctx, k),
                        40_000 + k as u64,
                        "acked write on a migrated chunk lost across restart"
                    );
                }
            }
        });
        cluster.shutdown(ctx);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// The incarnation guard: reopening a durable directory under a different
/// `runtime_threads` is rejected with a structured error, not silently
/// replayed under a re-partitioned placement.
#[test]
fn runtime_threads_change_between_incarnations_is_rejected() {
    let dir = {
        let mut p = std::env::temp_dir();
        p.push(format!("darray-elastic-meta-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    };
    let mk_cfg = |dir: &std::path::PathBuf, rts: usize| {
        let mut cfg = ClusterConfig::with_nodes(2);
        cfg.runtime_threads = rts;
        cfg.durability.policy = DurabilityPolicy::Writethrough;
        cfg.durability.dir = Some(dir.clone());
        cfg
    };
    let cfg = mk_cfg(&dir, 2);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        cluster.shutdown(ctx);
    });
    // Same count: accepted. Different count: structured rejection.
    assert_eq!(mk_cfg(&dir, 2).try_validate(), Ok(()));
    assert_eq!(
        mk_cfg(&dir, 1).try_validate(),
        Err(ConfigError::RuntimeThreadsChanged {
            recorded: 2,
            configured: 1,
        })
    );
    let cfg = mk_cfg(&dir, 1);
    let err = Sim::new(SimConfig::default()).run(move |ctx| {
        let r = Cluster::try_new(ctx, cfg);
        match r {
            Ok(c) => {
                c.shutdown(ctx);
                None
            }
            Err(e) => Some(e),
        }
    });
    assert!(
        matches!(
            err,
            Some(DArrayError::Config(ConfigError::RuntimeThreadsChanged {
                recorded: 2,
                configured: 1,
            }))
        ),
        "got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elastic knob validation: `initial_nodes` without `elastic` and
/// out-of-range active counts are structured errors.
#[test]
fn elastic_knobs_are_validated() {
    let mut cfg = ClusterConfig::with_nodes(3);
    cfg.initial_nodes = Some(2);
    assert_eq!(
        cfg.try_validate(),
        Err(ConfigError::InitialNodesWithoutElastic)
    );
    cfg.elastic = true;
    assert_eq!(cfg.try_validate(), Ok(()));
    cfg.initial_nodes = Some(0);
    assert_eq!(
        cfg.try_validate(),
        Err(ConfigError::BadInitialNodes {
            initial_nodes: 0,
            nodes: 3
        })
    );
    cfg.initial_nodes = Some(4);
    assert_eq!(
        cfg.try_validate(),
        Err(ConfigError::BadInitialNodes {
            initial_nodes: 4,
            nodes: 3
        })
    );
    // Elastic without spares is legal (migration-only elasticity).
    cfg.initial_nodes = None;
    assert_eq!(cfg.try_validate(), Ok(()));
}
