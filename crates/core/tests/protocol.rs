//! End-to-end coherence protocol tests: multi-node clusters exercising
//! reads, writes, ownership migration, the Operated state, eviction under
//! cache pressure, distributed locks, pins, and determinism.

use darray::{AccessPath, ArrayOptions, Cluster, ClusterConfig, Ctx, PinMode, Sim, SimConfig};

fn sim() -> Sim {
    Sim::new(SimConfig::default())
}

/// Run `f` inside a freshly booted cluster and shut it down afterwards.
fn with_cluster<R: Send + 'static>(
    cfg: ClusterConfig,
    f: impl FnOnce(&mut Ctx, &Cluster) -> R,
) -> R {
    sim().run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let r = f(ctx, &cluster);
        cluster.shutdown(ctx);
        r
    })
}

#[test]
fn remote_read_sees_home_data() {
    with_cluster(ClusterConfig::test_config(3), |ctx, cluster| {
        let arr = cluster.alloc_with::<u64>(3000, ArrayOptions::default(), |i| i as u64 * 7);
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Every node reads the whole array, including remote chunks.
            for i in (0..a.len()).step_by(97) {
                assert_eq!(a.get(ctx, i), i as u64 * 7);
            }
        });
    });
}

#[test]
fn remote_write_then_read_roundtrips() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let arr = cluster.alloc::<u64>(2048, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Each node writes a disjoint half — but the *other* node's
            // half, so every write is remote.
            let half = a.len() / 2;
            let start = if env.node == 0 { half } else { 0 };
            for i in start..start + half {
                a.set(ctx, i, (i as u64) << 8 | env.node as u64);
            }
            env.barrier(ctx);
            // Every node then verifies the full array.
            for i in 0..a.len() {
                let who = if i < half { 1 } else { 0 };
                assert_eq!(a.get(ctx, i), (i as u64) << 8 | who);
            }
        });
    });
}

#[test]
fn ownership_migrates_between_writers() {
    with_cluster(ClusterConfig::test_config(4), |ctx, cluster| {
        let arr = cluster.alloc::<u64>(512, ArrayOptions::default());
        // All four nodes take turns writing the same (single) chunk.
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            for round in 0..4 {
                if round == env.node {
                    for i in 0..a.len() {
                        let v = a.get(ctx, i);
                        a.set(ctx, i, v + 1);
                    }
                }
                env.barrier(ctx);
            }
            // Each element was incremented once per node.
            assert_eq!(a.get(ctx, 0), 4);
            assert_eq!(a.get(ctx, 511), 4);
        });
    });
}

#[test]
fn operate_combines_across_nodes() {
    with_cluster(ClusterConfig::test_config(4), |ctx, cluster| {
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(4096, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Every node adds (node+1) to every element.
            for i in 0..a.len() {
                a.apply(ctx, i, add, env.node as u64 + 1);
            }
            env.barrier(ctx);
            // 1+2+3+4 = 10 per element; reading forces recall+reduce.
            for i in (0..a.len()).step_by(111) {
                assert_eq!(a.get(ctx, i), 10);
            }
        });
    });
}

#[test]
fn operate_min_converges() {
    with_cluster(ClusterConfig::test_config(3), |ctx, cluster| {
        let min = cluster.ops().register_min_u64();
        let arr = cluster.alloc_with::<u64>(1024, ArrayOptions::default(), |_| u64::MAX / 2);
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            for i in 0..a.len() {
                // Node n proposes i + n; the min over nodes is i + 0.
                a.apply(ctx, i, min, (i + env.node) as u64);
            }
            env.barrier(ctx);
            if env.node == 2 {
                for i in (0..a.len()).step_by(61) {
                    assert_eq!(a.get(ctx, i), i as u64);
                }
            }
        });
    });
}

#[test]
fn mixed_operator_on_same_chunk_is_serialized_correctly() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let add = cluster.ops().register_add_u64();
        let max = cluster.ops().register_max_u64();
        let arr = cluster.alloc::<u64>(512, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Phase 1: both nodes add 5.
            a.apply(ctx, 10, add, 5);
            env.barrier(ctx);
            // Phase 2: both nodes max with 7 (forces an operator change,
            // which recalls and reduces the adds first).
            a.apply(ctx, 10, max, 7);
            env.barrier(ctx);
            // adds: 5+5 = 10; max(10, 7, 7) = 10.
            assert_eq!(a.get(ctx, 10), 10);
        });
    });
}

#[test]
fn eviction_under_tiny_cache_preserves_writes() {
    let mut cfg = ClusterConfig::test_config(2);
    cfg.cache.capacity_lines = 8; // tiny: constant eviction pressure
    cfg.cache.prefetch_lines = 0;
    with_cluster(cfg, |ctx, cluster| {
        let arr = cluster.alloc::<u64>(64 * 512, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 1 {
                // Write a remote element in every chunk of node 0's half —
                // far more chunks than cachelines, forcing dirty evictions.
                for c in 0..32 {
                    a.set(ctx, c * 512 + 3, c as u64 + 100);
                }
            }
            env.barrier(ctx);
            if env.node == 0 {
                for c in 0..32 {
                    assert_eq!(a.get(ctx, c * 512 + 3), c as u64 + 100);
                }
            }
        });
    });
}

#[test]
fn eviction_flushes_operated_lines() {
    let mut cfg = ClusterConfig::test_config(2);
    cfg.cache.capacity_lines = 4;
    cfg.cache.prefetch_lines = 0;
    with_cluster(cfg, |ctx, cluster| {
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(64 * 512, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 1 {
                // Touch many remote chunks with Operate; evictions must
                // flush combined operands, not lose them.
                for pass in 0..2 {
                    let _ = pass;
                    for c in 0..24 {
                        a.apply(ctx, c * 512 + 7, add, 1);
                    }
                }
            }
            env.barrier(ctx);
            if env.node == 0 {
                for c in 0..24 {
                    assert_eq!(a.get(ctx, c * 512 + 7), 2, "chunk {c}");
                }
            }
        });
    });
}

#[test]
fn distributed_wlock_provides_mutual_exclusion() {
    with_cluster(ClusterConfig::test_config(3), |ctx, cluster| {
        let arr = cluster.alloc::<u64>(512, ArrayOptions::default());
        const PER_THREAD: usize = 25;
        cluster.run(ctx, 2, move |ctx, env| {
            let a = arr.on(env.node);
            // WLock + read + modify + write: the Figure 14 baseline.
            for _ in 0..PER_THREAD {
                a.wlock(ctx, 5);
                let v = a.get(ctx, 5);
                a.set(ctx, 5, v + 1);
                a.unlock(ctx, 5);
            }
            env.barrier(ctx);
            assert_eq!(a.get(ctx, 5), (3 * 2 * PER_THREAD) as u64);
        });
    });
}

#[test]
fn rlock_allows_concurrent_readers() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let arr = cluster.alloc_with::<u64>(512, ArrayOptions::default(), |i| i as u64);
        cluster.run(ctx, 2, move |ctx, env| {
            let a = arr.on(env.node);
            for i in 0..20 {
                a.rlock(ctx, i);
                assert_eq!(a.get(ctx, i), i as u64);
                a.unlock(ctx, i);
            }
        });
    });
}

#[test]
fn pin_read_gives_stable_snapshot() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let arr = cluster.alloc_with::<u64>(1024, ArrayOptions::default(), |i| i as u64);
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Pin the remote chunk and scan it without atomics.
            let target = if env.node == 0 { 512 } else { 0 };
            let pin = a.pin(ctx, target, PinMode::Read);
            for i in pin.range() {
                assert_eq!(pin.get(ctx, i), i as u64);
            }
            pin.unpin();
        });
    });
}

#[test]
fn pin_write_and_operate_apply() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(1024, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 1 {
                // Write-pin node 0's chunk and fill it.
                let pin = a.pin(ctx, 0, PinMode::Write);
                for i in pin.range() {
                    pin.set(ctx, i, 7);
                }
                drop(pin); // Drop releases too.
            }
            env.barrier(ctx);
            // Both nodes now apply through Operate pins.
            let pin = a.pin(ctx, 100, PinMode::Operate(add));
            pin.apply(ctx, 100, add, 3);
            pin.unpin();
            env.barrier(ctx);
            assert_eq!(a.get(ctx, 100), 7 + 3 * env.nodes as u64);
        });
    });
}

#[test]
fn lock_based_access_path_is_correct_too() {
    let mut cfg = ClusterConfig::test_config(2);
    cfg.access_path = AccessPath::LockBased;
    with_cluster(cfg, |ctx, cluster| {
        let arr = cluster.alloc::<u64>(2048, ArrayOptions::default());
        cluster.run(ctx, 2, move |ctx, env| {
            let a = arr.on(env.node);
            let id = env.node * 2 + env.thread;
            for k in 0..50 {
                let i = (id * 50 + k) % a.len();
                a.set(ctx, i, (id * 1000 + k) as u64);
                assert_eq!(a.get(ctx, i), (id * 1000 + k) as u64);
            }
        });
    });
}

#[test]
fn custom_partition_routes_homes() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        // Node 0 owns only the first chunk; node 1 the rest.
        let arr = cluster.alloc_with::<u64>(
            8 * 512,
            ArrayOptions {
                chunk_size: None,
                partition_offset: Some(vec![0, 512]),
            },
            |i| i as u64,
        );
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            assert_eq!(a.home_of(0), 0);
            assert_eq!(a.home_of(512), 1);
            assert_eq!(a.home_of(8 * 512 - 1), 1);
            if env.node == 0 {
                assert_eq!(a.local_range(), 0..512);
            }
            // And accesses still work everywhere.
            assert_eq!(a.get(ctx, 4000), 4000);
        });
    });
}

#[test]
fn multiple_runtime_threads_partition_chunks() {
    let mut cfg = ClusterConfig::test_config(2);
    cfg.runtime_threads = 3;
    with_cluster(cfg, |ctx, cluster| {
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(12 * 512, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            for c in 0..12 {
                a.apply(ctx, c * 512, add, 1);
                a.set(ctx, c * 512 + 1, 9);
            }
            env.barrier(ctx);
            for c in 0..12 {
                assert_eq!(a.get(ctx, c * 512), 2);
                assert_eq!(a.get(ctx, c * 512 + 1), 9);
            }
        });
    });
}

#[test]
fn per_thread_pools_tile_cache_capacity_exactly() {
    // 100 lines over 3 runtime threads: 34 + 33 + 33. The remainder is
    // distributed (not dropped), the pools are contiguous and disjoint,
    // and together they cover exactly 0..capacity_lines — so each
    // thread's watermark scan (cyclic within its own pool) touches every
    // line of the node's region exactly once per cycle and no line twice.
    let mut cfg = ClusterConfig::test_config(2);
    cfg.runtime_threads = 3;
    cfg.cache.capacity_lines = 100;
    with_cluster(cfg, |_ctx, cluster| {
        for node in 0..2 {
            let pools = cluster.pool_stats(node);
            assert_eq!(pools.len(), 3);
            assert_eq!(
                pools.iter().map(|p| p.lines).collect::<Vec<_>>(),
                vec![34, 33, 33],
                "remainder lines must be distributed, not dropped"
            );
            let mut next = 0;
            for p in &pools {
                assert_eq!(p.base, next, "pools must be contiguous");
                next += p.lines;
            }
            assert_eq!(next, 100, "pools must cover the whole region");
        }
    });
}

#[test]
fn pool_stats_surface_occupancy_and_evictions() {
    // Tiny cache (6 lines over 2 threads) + a working set much larger
    // than capacity: every pool must both allocate and evict, and the
    // counters must show it.
    let mut cfg = ClusterConfig::test_config(2);
    cfg.runtime_threads = 2;
    cfg.cache.capacity_lines = 6;
    cfg.cache.prefetch_lines = 0;
    with_cluster(cfg, |ctx, cluster| {
        let arr = cluster.alloc::<u64>(64 * 512, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 0 {
                // Touch one element of many remote chunks, twice, to
                // churn both pools through their watermarks.
                for round in 0..2 {
                    for c in 32..64 {
                        assert_eq!(a.get(ctx, c * 512 + round), 0);
                    }
                }
            }
        });
        let pools = cluster.pool_stats(0);
        assert_eq!(pools.len(), 2);
        for (i, p) in pools.iter().enumerate() {
            assert!(p.allocs > 0, "pool {i} never allocated: {p:?}");
            assert!(p.evictions > 0, "pool {i} never evicted: {p:?}");
            assert!(
                p.peak_occupied > 0 && p.peak_occupied <= p.lines,
                "pool {i} peak out of range: {p:?}"
            );
            assert!(p.occupied <= p.lines);
        }
        let node_evictions = cluster.stats(0).evictions;
        let pool_evictions: u64 = pools.iter().map(|p| p.evictions).sum();
        assert_eq!(
            node_evictions, pool_evictions,
            "per-pool evictions must sum to the node counter"
        );
    });
}

#[test]
fn tx_threads_mode_works() {
    let mut cfg = ClusterConfig::test_config(2);
    cfg.tx_threads = true;
    with_cluster(cfg, |ctx, cluster| {
        let arr = cluster.alloc::<u64>(2048, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let other_half_start = if env.node == 0 { 1024 } else { 0 };
            for i in other_half_start..other_half_start + 64 {
                a.set(ctx, i, i as u64 + 1);
            }
            env.barrier(ctx);
            for i in 0..64 {
                assert_eq!(a.get(ctx, i), i as u64 + 1);
                assert_eq!(a.get(ctx, 1024 + i), 1024 + i as u64 + 1);
            }
        });
    });
}

#[test]
fn two_arrays_coexist_independently() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let add = cluster.ops().register_add_u64();
        let xs = cluster.alloc::<u64>(1024, ArrayOptions::default());
        let ys = cluster.alloc_with::<f64>(1024, ArrayOptions::default(), |i| i as f64);
        cluster.run(ctx, 1, move |ctx, env| {
            let x = xs.on(env.node);
            let y = ys.on(env.node);
            x.apply(ctx, 700, add, 2);
            assert_eq!(y.get(ctx, 700), 700.0);
            env.barrier(ctx);
            assert_eq!(x.get(ctx, 700), 4);
        });
    });
}

#[test]
fn runs_are_deterministic() {
    fn one_run() -> (u64, u64) {
        with_cluster(ClusterConfig::with_nodes(3), |ctx, cluster| {
            let add = cluster.ops().register_add_u64();
            let arr = cluster.alloc::<u64>(6 * 512, ArrayOptions::default());
            cluster.run(ctx, 2, move |ctx, env| {
                let a = arr.on(env.node);
                for i in (0..a.len()).step_by(7) {
                    a.apply(ctx, i, add, 1);
                }
                env.barrier(ctx);
                if env.node == 0 && env.thread == 0 {
                    let mut sum = 0;
                    for i in (0..a.len()).step_by(7) {
                        sum += a.get(ctx, i);
                    }
                    assert_eq!(sum, 6 * (a.len() as u64).div_ceil(7));
                }
            });
            let s = cluster.stats(0);
            (ctx_now(ctx), s.fills + s.rpcs_handled)
        })
    }
    fn ctx_now(ctx: &Ctx) -> u64 {
        ctx.now()
    }
    let a = one_run();
    let b = one_run();
    assert_eq!(
        a, b,
        "virtual end time and protocol traffic must be identical"
    );
}

#[test]
fn stats_reflect_activity() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let arr = cluster.alloc_with::<u64>(4096, ArrayOptions::default(), |i| i as u64);
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 1 {
                for i in 0..2048 {
                    assert_eq!(a.get(ctx, i), i as u64);
                }
            }
        });
        let s1 = cluster.stats(1);
        assert!(s1.fast_hits > 0);
        assert!(s1.slow_misses > 0, "remote scan must miss");
        assert!(s1.fills > 0);
        let n1 = cluster.nic_stats(1);
        assert!(n1.sends > 0);
        let n0 = cluster.nic_stats(0);
        assert!(n0.writes > 0, "fills are one-sided WRITEs from the home");
    });
}

#[test]
fn prefetch_reduces_misses_on_sequential_scan() {
    fn scan_misses(prefetch: usize) -> u64 {
        let mut cfg = ClusterConfig::test_config(2);
        cfg.cache.prefetch_lines = prefetch;
        with_cluster(cfg, |ctx, cluster| {
            let arr = cluster.alloc::<u64>(64 * 512, ArrayOptions::default());
            cluster.run(ctx, 1, move |ctx, env| {
                if env.node == 1 {
                    let a = arr.on(env.node);
                    for i in 0..a.len() / 2 {
                        let _ = a.get(ctx, i); // node 0's half: all remote
                    }
                }
            });
            cluster.stats(1).slow_misses
        })
    }
    let without = scan_misses(0);
    let with = scan_misses(4);
    assert!(
        with < without,
        "prefetch should absorb misses: {with} >= {without}"
    );
}
