//! Backend parity: the tier-1 coherence / lock / Operate workloads must
//! produce the *same protocol transition counts* over real TCP sockets as
//! over the deterministic dsim fabric.
//!
//! Timing is not comparable across backends (real sockets deliver whenever
//! the OS pleases), but with the timing-sensitive knobs disabled
//! (`grant_grace_ns`, prefetch) the set of protocol messages exchanged is a
//! schedule-independent function of the workload: every phase is separated
//! by a barrier, writers/readers/lockers target disjoint chunks, and a
//! final drain phase (a blocking read over every ordered node pair) flushes
//! outstanding fire-and-forget traffic on every link before shutdown, so
//! both backends handle the identical message set.

#![cfg(feature = "tcp-transport")]

use darray::{
    ArrayOptions, Cluster, ClusterConfig, ConfigError, DArrayError, NodeStatsSnapshot, Sim,
    SimConfig, TransportKind, DEFAULT_CHUNK_SIZE,
};

const NODES: usize = 3;
const CHUNKS_PER_NODE: usize = 6;

fn parity_config(kind: TransportKind) -> ClusterConfig {
    let mut cfg = ClusterConfig::test_config(NODES);
    // Grace windows and prefetch change *when* protocol actions fire based
    // on (virtual) time, which the real-socket backend cannot reproduce;
    // with them off, transition counts depend only on the workload.
    cfg.grant_grace_ns = 0;
    cfg.cache.prefetch_lines = 0;
    cfg.transport = kind;
    cfg
}

/// First element of chunk `c` of the partition homed at `node`.
fn base(node: usize, c: usize) -> usize {
    (node * CHUNKS_PER_NODE + c) * DEFAULT_CHUNK_SIZE
}

/// The protocol-level projection of a stats snapshot: transport byte/frame
/// and egress-batching counters (backend-specific by design) zeroed out,
/// everything else kept.
fn protocol_view(mut s: NodeStatsSnapshot) -> NodeStatsSnapshot {
    s.bytes_tx = 0;
    s.bytes_rx = 0;
    s.frames = 0;
    s.completions = 0;
    s.tx_flushes = 0;
    s.doorbell_batches = 0;
    s.frames_coalesced = 0;
    s.ring_hwm = 0;
    s
}

/// Barrier-phased workload exercising remote writes, dirty recalls, the
/// Operated state with cross-node reduction, and distributed locks.
/// Returns each node's protocol counters.
fn run_workload(cfg: ClusterConfig) -> Vec<NodeStatsSnapshot> {
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(
            NODES * CHUNKS_PER_NODE * DEFAULT_CHUNK_SIZE,
            ArrayOptions::default(),
        );
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let peer = (env.node + 1) % NODES;

            // Phase 1: every node writes 8 elements into its peer's chunk 0
            // (exactly one writer per chunk; all writes remote).
            for k in 0..8 {
                a.set(ctx, base(peer, 0) + k, ((env.node as u64) << 32) | k as u64);
            }
            env.barrier(ctx);

            // Phase 2: the third node of each (writer, home) pair reads the
            // data back, recalling the dirty copy through the home.
            let writer = (env.node + 1) % NODES;
            let home = (env.node + 2) % NODES;
            for k in 0..8 {
                let v = a.get(ctx, base(home, 0) + k);
                assert_eq!(v, ((writer as u64) << 32) | k as u64);
            }
            env.barrier(ctx);

            // Phase 3: Operate — all nodes concurrently apply `add` to the
            // same elements of every node's chunk 2.
            for h in 0..NODES {
                for k in 0..4 {
                    a.apply(ctx, base(h, 2) + k, add, 1);
                }
            }
            env.barrier(ctx);
            // Node 0 reads the results, forcing recall + reduction of every
            // node's combined operands.
            if env.node == 0 {
                for h in 0..NODES {
                    for k in 0..4 {
                        assert_eq!(a.get(ctx, base(h, 2) + k), NODES as u64);
                    }
                }
            }
            env.barrier(ctx);

            // Phase 4: uncontended remote locks (distinct element and chunk
            // per node) guarding read-modify-write, then a read lock.
            let lock_elem = base(peer, 4) + env.node;
            for _ in 0..3 {
                a.wlock(ctx, lock_elem);
                let v = a.get(ctx, lock_elem);
                a.set(ctx, lock_elem, v + 1);
                a.unlock(ctx, lock_elem);
            }
            a.rlock(ctx, lock_elem);
            assert_eq!(a.get(ctx, lock_elem), 3);
            a.unlock(ctx, lock_elem);
            env.barrier(ctx);

            // Phase 5: drain. A blocking read on a fresh chunk homed at
            // every peer puts a request/response round-trip behind all
            // earlier traffic on every ordered link; per-link FIFO then
            // guarantees the fire-and-forget tail (lock releases,
            // writeback notices) is handled before shutdown on both
            // backends.
            for d in 1..NODES {
                let h = (env.node + d) % NODES;
                assert_eq!(a.get(ctx, base(h, 5) + env.node), 0);
            }
            env.barrier(ctx);
        });
        let stats = (0..NODES).map(|n| cluster.stats(n)).collect();
        cluster.shutdown(ctx);
        stats
    })
}

#[test]
fn tcp_matches_sim_protocol_transition_counts() {
    let sim = run_workload(parity_config(TransportKind::Sim));
    let tcp = run_workload(parity_config(TransportKind::Tcp));
    for node in 0..NODES {
        assert_eq!(
            protocol_view(sim[node]),
            protocol_view(tcp[node]),
            "node {node}: protocol counters must not depend on the backend"
        );
    }
    // The workload actually exercised the protocol.
    let total: u64 = sim.iter().map(|s| s.transitions).sum();
    assert!(total > 0, "workload must drive protocol transitions");
}

/// The multi-threaded runtime must not disturb backend parity either: with
/// `runtime_threads = 2` the chunk→thread placement partitions the same
/// protocol work across two executors per node, and the transition counts
/// must still be a backend-independent function of the workload.
#[test]
fn tcp_matches_sim_with_multithreaded_runtime() {
    let rt2 = |kind| {
        let mut cfg = parity_config(kind);
        cfg.runtime_threads = 2;
        cfg
    };
    let sim = run_workload(rt2(TransportKind::Sim));
    let tcp = run_workload(rt2(TransportKind::Tcp));
    for node in 0..NODES {
        assert_eq!(
            protocol_view(sim[node]),
            protocol_view(tcp[node]),
            "node {node}: partitioned protocol counters must not depend on the backend"
        );
    }
    let total: u64 = sim.iter().map(|s| s.transitions).sum();
    assert!(total > 0, "workload must drive protocol transitions");
}

/// Durability must not disturb backend parity: with persist-before-ack on
/// (Writethrough, per-backend scratch log dirs), the protocol transition
/// counts — including `flush_persists` — are identical over dsim and TCP,
/// and the workload's dirty recalls actually exercise the persist path.
#[test]
fn tcp_matches_sim_with_durability_enabled() {
    use darray::DurabilityPolicy;
    let scratch = |backend: &str| {
        let mut p = std::env::temp_dir();
        p.push(format!("darray-parity-{}-{backend}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    };
    let durable = |kind, dir: &std::path::Path| {
        let mut cfg = parity_config(kind);
        cfg.durability.policy = DurabilityPolicy::Writethrough;
        cfg.durability.dir = Some(dir.to_path_buf());
        cfg
    };
    let (sim_dir, tcp_dir) = (scratch("sim"), scratch("tcp"));
    let sim = run_workload(durable(TransportKind::Sim, &sim_dir));
    let tcp = run_workload(durable(TransportKind::Tcp, &tcp_dir));
    for node in 0..NODES {
        assert_eq!(
            protocol_view(sim[node]),
            protocol_view(tcp[node]),
            "node {node}: durable protocol counters must not depend on the backend"
        );
    }
    let persists: u64 = sim.iter().map(|s| s.flush_persists).sum();
    assert!(
        persists > 0,
        "workload never hit the persist-before-ack path"
    );
    let _ = std::fs::remove_dir_all(&sim_dir);
    let _ = std::fs::remove_dir_all(&tcp_dir);
}

/// Elasticity must not disturb backend parity: a node join followed by two
/// live chunk migrations (DESIGN.md §15) is a fault-free synchronous
/// protocol exchange, so the transition counts — including the migration
/// counters — are identical over dsim and TCP.
#[test]
fn tcp_matches_sim_through_join_and_migration() {
    let elastic = |kind| {
        let mut cfg = parity_config(kind);
        cfg.elastic = true;
        cfg.initial_nodes = Some(NODES - 1);
        cfg
    };
    let run = |cfg: ClusterConfig| -> Vec<NodeStatsSnapshot> {
        Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, cfg);
            let arr = cluster.alloc::<u64>(
                NODES * CHUNKS_PER_NODE * DEFAULT_CHUNK_SIZE,
                ArrayOptions::default(),
            );
            // Phase 1: the active prefix dirties chunk 0 of node 0's
            // partition so the migration carries a recalled, non-pristine
            // image.
            let arr1 = arr.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                if env.node < NODES - 1 {
                    let a = arr1.on(env.node);
                    for k in 0..8 {
                        a.set(ctx, base(0, 0) + env.node * 8 + k, 7_000 + k as u64);
                    }
                }
                env.barrier(ctx);
            });
            // Join the spare and re-home two chunks onto it: one dirtied,
            // one untouched.
            assert_eq!(cluster.join_peer(ctx, NODES - 1), NODES);
            cluster.migrate_chunk(ctx, &arr, 0, NODES - 1);
            cluster.migrate_chunk(ctx, &arr, 1, NODES - 1);
            // Phase 2: every node reads through the new home; the joiner
            // writes through an adopted chunk and the old home reads it
            // back. The final cross-reads double as the drain phase.
            let arr2 = arr.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                let a = arr2.on(env.node);
                for w in 0..NODES - 1 {
                    assert_eq!(a.get(ctx, base(0, 0) + w * 8), 7_000);
                }
                env.barrier(ctx);
                if env.node == NODES - 1 {
                    a.set(ctx, base(0, 1) + 3, 42);
                }
                env.barrier(ctx);
                assert_eq!(a.get(ctx, base(0, 1) + 3), 42);
                env.barrier(ctx);
                for d in 1..NODES {
                    let h = (env.node + d) % NODES;
                    assert_eq!(a.get(ctx, base(h, 5) + env.node), 0);
                }
                env.barrier(ctx);
            });
            let stats = (0..NODES).map(|n| cluster.stats(n)).collect();
            cluster.shutdown(ctx);
            stats
        })
    };
    let sim = run(elastic(TransportKind::Sim));
    let tcp = run(elastic(TransportKind::Tcp));
    for node in 0..NODES {
        assert_eq!(
            protocol_view(sim[node]),
            protocol_view(tcp[node]),
            "node {node}: elastic protocol counters must not depend on the backend"
        );
    }
    assert_eq!(sim[0].migrations_out, 2, "{:?}", sim[0]);
    assert_eq!(sim[NODES - 1].migrations_in, 2, "{:?}", sim[NODES - 1]);
}

/// [`parity_config`] with the async pump's batching knobs turned all the
/// way from their defaults: a shallow 4-frame egress ring, selective
/// signaling every 8th frame, and a single pump thread multiplexing every
/// link.
fn batched_config(kind: TransportKind) -> ClusterConfig {
    let mut cfg = parity_config(kind);
    cfg.batch.send_batch_max = 4;
    cfg.batch.flush_every_frames = Some(8);
    cfg.tcp.pump_threads = 1;
    cfg
}

/// The async event-loop pump's doorbell batching (DESIGN.md §13) is egress
/// mechanics only: under non-default batching knobs the protocol
/// transition counts still match dsim bit-for-bit, the TCP egress rings
/// actually coalesce, and the counter identity
/// `frames == tx_flushes + frames_coalesced` holds on both backends.
#[test]
fn tcp_matches_sim_with_batching_knobs() {
    let sim = run_workload(batched_config(TransportKind::Sim));
    let tcp = run_workload(batched_config(TransportKind::Tcp));
    for node in 0..NODES {
        assert_eq!(
            protocol_view(sim[node]),
            protocol_view(tcp[node]),
            "node {node}: batching knobs must not leak into the protocol"
        );
    }
    for (label, stats) in [("sim", &sim), ("tcp", &tcp)] {
        for (node, s) in stats.iter().enumerate() {
            assert_eq!(
                s.frames,
                s.tx_flushes + s.frames_coalesced,
                "{label} node {node}: every frame either rings a doorbell or rides a batch"
            );
        }
    }
    // Every write_send posts an indivisible WRITE+MSG train, so a batching
    // backend must coalesce at least once under this workload.
    let batches: u64 = tcp.iter().map(|s| s.doorbell_batches).sum();
    let coalesced: u64 = tcp.iter().map(|s| s.frames_coalesced).sum();
    assert!(batches > 0, "TCP egress rings never committed a batch");
    assert!(coalesced > 0, "TCP egress rings never coalesced a frame");
}

/// Batching knobs and the partitioned multi-threaded runtime compose: the
/// rt=2 protocol counts stay backend-independent under the same non-default
/// egress-ring configuration.
#[test]
fn tcp_matches_sim_with_batching_knobs_rt2() {
    let rt2 = |kind| {
        let mut cfg = batched_config(kind);
        cfg.runtime_threads = 2;
        cfg
    };
    let sim = run_workload(rt2(TransportKind::Sim));
    let tcp = run_workload(rt2(TransportKind::Tcp));
    for node in 0..NODES {
        assert_eq!(
            protocol_view(sim[node]),
            protocol_view(tcp[node]),
            "node {node}: batching + rt2 must not leak into the protocol"
        );
    }
    let total: u64 = sim.iter().map(|s| s.transitions).sum();
    assert!(total > 0, "workload must drive protocol transitions");
}

/// Batching knobs and persist-before-ack durability compose the same way
/// (the flush path rides write_send trains through the egress rings).
#[test]
fn tcp_matches_sim_with_batching_knobs_and_durability() {
    use darray::DurabilityPolicy;
    let scratch = |backend: &str| {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "darray-parity-batch-{}-{backend}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    };
    let durable = |kind, dir: &std::path::Path| {
        let mut cfg = batched_config(kind);
        cfg.durability.policy = DurabilityPolicy::Writethrough;
        cfg.durability.dir = Some(dir.to_path_buf());
        cfg
    };
    let (sim_dir, tcp_dir) = (scratch("sim"), scratch("tcp"));
    let sim = run_workload(durable(TransportKind::Sim, &sim_dir));
    let tcp = run_workload(durable(TransportKind::Tcp, &tcp_dir));
    for node in 0..NODES {
        assert_eq!(
            protocol_view(sim[node]),
            protocol_view(tcp[node]),
            "node {node}: batching + durability must not leak into the protocol"
        );
    }
    let persists: u64 = sim.iter().map(|s| s.flush_persists).sum();
    assert!(
        persists > 0,
        "workload never hit the persist-before-ack path"
    );
    let _ = std::fs::remove_dir_all(&sim_dir);
    let _ = std::fs::remove_dir_all(&tcp_dir);
}

#[test]
fn tcp_transport_counters_surface_in_stats() {
    let mut cfg = parity_config(TransportKind::Tcp);
    cfg.tx_threads = true; // Tx threads post through the same trait object.
    let stats = run_workload(cfg);
    for (node, s) in stats.iter().enumerate() {
        assert!(s.bytes_tx > 0, "node {node} posted frames");
        assert!(s.bytes_rx > 0, "node {node} received frames");
        assert!(s.frames > 0, "node {node} counted frames");
        assert!(s.completions > 0, "node {node} observed completions");
    }
}

#[test]
fn sim_counters_still_surface_alongside_nic_stats() {
    let cfg = parity_config(TransportKind::Sim);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(NODES * DEFAULT_CHUNK_SIZE, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            // All three nodes write elements homed at node 0.
            let a = arr.on(env.node);
            a.set(ctx, env.node, 1);
            env.barrier(ctx);
        });
        let s = cluster.stats(1);
        assert!(s.bytes_tx > 0 && s.frames > 0, "overlay works on sim too");
        assert!(cluster.nic_stats(1).sends > 0, "raw NIC view preserved");
        cluster.shutdown(ctx);
    });
}

/// Graceful shutdown: tearing a cluster down drains the egress rings and
/// joins the fixed pump pool (the transport's `Drop` runs when the last
/// runtime thread releases it). Repeated bring-up/tear-down must not
/// accumulate OS threads — a leak of even one pump per round would show
/// up here as ~30 stray threads.
#[test]
fn cluster_teardown_loop_drains_pumps_and_leaks_no_threads() {
    fn os_threads() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap()
    }
    let before = os_threads();
    for round in 0..5u64 {
        let cfg = parity_config(TransportKind::Tcp);
        Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, cfg);
            let arr = cluster.alloc::<u64>(NODES * DEFAULT_CHUNK_SIZE, ArrayOptions::default());
            cluster.run(ctx, 1, move |ctx, env| {
                // A remote write per node keeps the egress rings busy right
                // up to the tear-down.
                let a = arr.on(env.node);
                a.set(ctx, (env.node + 1) % NODES, round);
                env.barrier(ctx);
            });
            cluster.shutdown(ctx);
        });
    }
    // Generous slack: other tests in this binary run concurrently and spawn
    // threads of their own; a real leak would add 5 rounds x 3 nodes x 2
    // pumps = 30.
    let after = os_threads();
    assert!(
        after < before + 20,
        "pump threads leaked across teardown: {before} -> {after}"
    );
}

#[test]
fn tcp_bring_up_failure_is_a_structured_error() {
    // Occupy a port, then ask the cluster to listen on it: bring-up must
    // surface a structured Config error, not panic.
    let blocker = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let taken = blocker.local_addr().unwrap();
    let mut cfg = parity_config(TransportKind::Tcp);
    cfg.nodes = 2;
    cfg.tcp.addrs = Some(vec![taken.to_string(), "127.0.0.1:0".to_string()]);
    let err = Sim::new(SimConfig::default()).run(move |ctx| match Cluster::try_new(ctx, cfg) {
        Ok(cluster) => {
            cluster.shutdown(ctx);
            None
        }
        Err(e) => Some(e),
    });
    match err {
        Some(DArrayError::Config(ConfigError::TransportBringUp { message })) => {
            assert!(!message.is_empty());
        }
        other => panic!("expected TransportBringUp, got {other:?}"),
    }
    drop(blocker);
}

#[test]
fn tcp_without_feature_is_rejected_by_validation() {
    // (This file only builds with the feature, so exercise the *validation*
    // path that callers without the feature would hit: a nonsense knob.)
    let mut cfg = parity_config(TransportKind::Tcp);
    cfg.tcp.max_frame_words = 0;
    let err = Sim::new(SimConfig::default()).run(move |ctx| Cluster::try_new(ctx, cfg).err());
    assert_eq!(
        err,
        Some(DArrayError::Config(ConfigError::ZeroFrameWords)),
        "invalid transport knobs must be rejected before bring-up"
    );
}
