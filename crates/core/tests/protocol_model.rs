//! Thread-free model test of the sans-I/O coherence protocol
//! (`darray::protocol`).
//!
//! No simulator, no channels, no runtime threads: a tiny *world model*
//! plays the role of a faithful 3-node cluster around a [`HomeMachine`].
//! Every action the machine emits is turned into the reply a correct cache
//! would send (invalidate -> ack, recall -> writeback, recall-operated ->
//! flush, drain -> drained), and the world tracks the access rights each
//! grant conveys. After every delivered event the world checks the protocol
//! invariants:
//!
//! * **single writer** — at most one node holds write rights, and while one
//!   does, nobody else holds any rights;
//! * **sharer sets** — when the directory is stable, its sharer list agrees
//!   exactly with the rights the world has observed being granted;
//! * **progress** — a stable directory never sits on queued requests.
//!
//! Two drivers exercise the machine: an exhaustive pass over every stable
//! state x request kind x requester (with all 3-node sharer sets), and a
//! randomized interleaving pass that mixes requests, voluntary evictions,
//! grace-window retries and stale messages over hundreds of steps.
//! A third test sweeps the requester-side [`CacheMachine`] over its full
//! view x event cross-product.

use std::collections::BTreeSet;

use darray::protocol::{
    AfterDrain, CacheAction, CacheEvent, CacheMachine, CacheView, HomeAction, HomeEvent,
    HomeMachine, Kind, Request, Requester, LINE_NONE, NOTAG,
};
use darray::{DirState, LocalState};

const HOME: usize = 0;
const REMOTES: [usize; 2] = [1, 2];

/// Rights a remote node currently holds, as implied by the grants and
/// revocations the world has delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum R {
    None,
    Read,
    Write,
    Op(u32),
}

/// A reply the modelled cluster owes the home machine.
#[derive(Debug, Clone, Copy)]
enum Reply {
    InvAck(usize),
    WritebackFull(usize),
    WritebackDown(usize),
    Flush(usize, u32),
    Drained,
    Retry(u64),
    PersistDone(u64),
}

/// Deterministic splitmix-style PRNG (no external deps).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct World {
    m: HomeMachine<u32>,
    grace: u64,
    now: u64,
    rights: [R; 3],
    home_local: LocalState,
    drain_target: Option<LocalState>,
    inflight: Vec<Reply>,
    issued_waiters: BTreeSet<u32>,
    woken: BTreeSet<u32>,
    next_waiter: u32,
    /// (stable-state name, "Request:<kind>:<source>") pairs serviced.
    request_coverage: BTreeSet<(String, String)>,
    /// (transient name at delivery, event name) pairs observed.
    transient_coverage: BTreeSet<(String, String)>,
}

impl World {
    fn new(grace: u64) -> Self {
        Self::build(grace, false)
    }

    /// A world whose home machine persists dirty data before acking
    /// (the `AwaitPersist` transient between writeback and wake).
    fn new_durable(grace: u64) -> Self {
        Self::build(grace, true)
    }

    fn build(grace: u64, durable: bool) -> Self {
        let mut m = HomeMachine::new();
        m.set_durable(durable);
        Self {
            m,
            grace,
            now: 0,
            rights: [R::None; 3],
            home_local: LocalState::Exclusive,
            drain_target: None,
            inflight: Vec::new(),
            issued_waiters: BTreeSet::new(),
            woken: BTreeSet::new(),
            next_waiter: 0,
            request_coverage: BTreeSet::new(),
            transient_coverage: BTreeSet::new(),
        }
    }

    fn feed(&mut self, ev: HomeEvent<u32>, label: &str) {
        self.transient_coverage
            .insert((self.m.transient().name().to_string(), label.to_string()));
        if let HomeEvent::Request(req) = &ev {
            if self.m.transient().is_none() && !self.m.has_current() {
                let kind = match req.kind {
                    Kind::Read => "Read",
                    Kind::Write => "Write",
                    Kind::Operate(_) => "Operate",
                };
                let src = match req.source {
                    Requester::Local(_) => "Local",
                    Requester::Remote { .. } => "Remote",
                };
                self.request_coverage
                    .insert((self.m.state().name().to_string(), format!("{kind}:{src}")));
            }
        }
        let actions = self.m.on_event(self.now, self.grace, ev);
        self.apply(&actions);
        self.check_invariants();
    }

    fn apply(&mut self, actions: &[HomeAction<u32>]) {
        for a in actions {
            match a {
                HomeAction::ChargeDirUpdate
                | HomeAction::ApplyFlushData { .. }
                | HomeAction::Trace(_)
                | HomeAction::Count(_) => {}
                HomeAction::Wake(w) => {
                    assert!(self.woken.insert(*w), "waiter {w} woken twice");
                }
                HomeAction::SendFill { to, exclusive, .. } => {
                    self.rights[*to] = if *exclusive { R::Write } else { R::Read };
                }
                HomeAction::SendGrant { to, op } => self.rights[*to] = R::Op(*op),
                HomeAction::SendInvalidate { to } => self.inflight.push(Reply::InvAck(*to)),
                HomeAction::SendRecallDirty { to } => {
                    self.inflight.push(Reply::WritebackFull(*to));
                }
                HomeAction::SendDowngrade { to } => {
                    self.inflight.push(Reply::WritebackDown(*to));
                }
                HomeAction::SendRecallOperated { to, op } => {
                    self.inflight.push(Reply::Flush(*to, *op));
                }
                HomeAction::SetHomeLocal { state, .. } => self.home_local = *state,
                HomeAction::StartHomeDrain { target, .. } => {
                    self.drain_target = Some(*target);
                    self.inflight.push(Reply::Drained);
                }
                HomeAction::ScheduleRetry { at } => self.inflight.push(Reply::Retry(*at)),
                HomeAction::PersistChunk { seq } => {
                    self.inflight.push(Reply::PersistDone(*seq));
                }
                // This harness never issues BeginMigration; the migration
                // family has its own explicit-state search
                // (protocol_check.rs::migration).
                HomeAction::TransferChunk { .. }
                | HomeAction::SendMigrateAck { .. }
                | HomeAction::SendMigrateCommit { .. }
                | HomeAction::DepartChunk { .. }
                | HomeAction::AdoptChunk { .. }
                | HomeAction::ForwardRequest { .. } => {
                    panic!("migration action in a migration-free harness: {a:?}")
                }
            }
        }
    }

    /// Deliver the `i`-th in-flight reply, mimicking what a correct cache
    /// does to its own rights before replying.
    fn deliver(&mut self, i: usize) {
        let reply = self.inflight.swap_remove(i);
        self.now += 1;
        match reply {
            Reply::InvAck(n) => {
                self.rights[n] = R::None;
                self.feed(HomeEvent::InvAck { from: n }, "InvAck");
            }
            Reply::WritebackFull(n) => {
                self.rights[n] = R::None;
                self.feed(
                    HomeEvent::Writeback {
                        from: n,
                        downgrade: false,
                    },
                    "Writeback",
                );
            }
            Reply::WritebackDown(n) => {
                self.rights[n] = R::Read;
                self.feed(
                    HomeEvent::Writeback {
                        from: n,
                        downgrade: true,
                    },
                    "Writeback",
                );
            }
            Reply::Flush(n, op) => {
                self.rights[n] = R::None;
                self.feed(
                    HomeEvent::Flush {
                        from: n,
                        op,
                        has_data: true,
                    },
                    "Flush",
                );
            }
            Reply::Drained => {
                if let Some(t) = self.drain_target.take() {
                    self.home_local = t;
                }
                self.feed(HomeEvent::Drained, "Drained");
            }
            Reply::Retry(at) => {
                self.now = self.now.max(at);
                self.feed(HomeEvent::RetryExpired, "RetryExpired");
            }
            Reply::PersistDone(seq) => {
                self.feed(HomeEvent::PersistDone { seq }, "PersistDone");
            }
        }
    }

    fn local_request(&mut self, kind: Kind) {
        let w = self.next_waiter;
        self.next_waiter += 1;
        self.issued_waiters.insert(w);
        self.feed(
            HomeEvent::Request(Request {
                source: Requester::Local(w),
                kind,
            }),
            "Request",
        );
    }

    fn remote_request(&mut self, node: usize, kind: Kind) {
        assert_eq!(
            self.rights[node],
            R::None,
            "model only issues requests from nodes without rights"
        );
        self.feed(
            HomeEvent::Request(Request {
                source: Requester::Remote { node, dst_off: 0 },
                kind,
            }),
            "Request",
        );
    }

    fn check_invariants(&self) {
        // Single writer: at most one node writes, and then nobody else
        // holds anything.
        let writers: Vec<usize> = REMOTES
            .iter()
            .copied()
            .filter(|&n| self.rights[n] == R::Write)
            .collect();
        assert!(writers.len() <= 1, "two writers: {:?}", self.rights);
        if let [w] = writers[..] {
            for n in REMOTES {
                if n != w {
                    assert_eq!(
                        self.rights[n],
                        R::None,
                        "node {n} holds rights alongside writer {w}: {:?}",
                        self.rights
                    );
                }
            }
        }
        // All concurrent operators agree.
        let ops: BTreeSet<u32> = REMOTES
            .iter()
            .filter_map(|&n| match self.rights[n] {
                R::Op(o) => Some(o),
                _ => None,
            })
            .collect();
        assert!(ops.len() <= 1, "mixed operators live: {:?}", self.rights);

        // Stable directory: sharer sets match granted rights exactly, the
        // home dentry matches the Table-1 row, and no request is parked.
        if self.m.transient().is_none() {
            assert_eq!(self.m.pending_len(), 0, "stable state with queued work");
            assert!(!self.m.has_current(), "stable state with a parked request");
            match self.m.state() {
                DirState::Unshared => {
                    for n in REMOTES {
                        assert_eq!(self.rights[n], R::None, "Unshared but {:?}", self.rights);
                    }
                }
                DirState::Shared { sharers } => {
                    let set: BTreeSet<usize> = sharers.iter().copied().collect();
                    assert_eq!(set.len(), sharers.len(), "duplicate sharers: {sharers:?}");
                    assert!(!set.contains(&HOME), "home listed as its own sharer");
                    for n in REMOTES {
                        let expect = if set.contains(&n) { R::Read } else { R::None };
                        assert_eq!(self.rights[n], expect, "Shared{sharers:?}");
                    }
                }
                DirState::Dirty { owner } => {
                    assert_ne!(*owner, HOME, "home cannot be the Dirty owner");
                    for n in REMOTES {
                        let expect = if n == *owner { R::Write } else { R::None };
                        assert_eq!(self.rights[n], expect, "Dirty{{owner: {owner}}}");
                    }
                }
                DirState::Operated { op, sharers } => {
                    let set: BTreeSet<usize> = sharers.iter().copied().collect();
                    assert_eq!(set.len(), sharers.len(), "duplicate sharers: {sharers:?}");
                    for n in REMOTES {
                        let expect = if set.contains(&n) {
                            R::Op(op.0)
                        } else {
                            R::None
                        };
                        assert_eq!(self.rights[n], expect, "Operated{sharers:?}");
                    }
                }
            }
            assert_eq!(
                self.home_local,
                self.m.state().home_local(),
                "home dentry out of sync with directory {:?}",
                self.m.state()
            );
        }
    }

    /// Deliver every outstanding reply until the protocol is fully stable.
    fn quiesce(&mut self) {
        let mut steps = 0;
        while !self.inflight.is_empty() {
            self.deliver(0);
            steps += 1;
            assert!(steps < 10_000, "protocol failed to quiesce");
        }
        assert!(self.m.transient().is_none(), "quiesced with a transient");
        assert_eq!(
            self.issued_waiters, self.woken,
            "local requests left sleeping at quiescence"
        );
    }
}

// ---------------------------------------------------------------------
// Builders: drive a fresh machine into each stable state.
// ---------------------------------------------------------------------

fn shared(world: &mut World, sharers: &[usize]) {
    for &n in sharers {
        world.remote_request(n, Kind::Read);
        world.quiesce();
    }
    assert_eq!(world.m.state().name(), "Shared");
}

fn dirty(world: &mut World, owner: usize) {
    world.remote_request(owner, Kind::Write);
    world.quiesce();
    assert_eq!(world.m.state(), &DirState::Dirty { owner });
}

fn operated(world: &mut World, op: u32, sharers: &[usize]) {
    for &n in sharers {
        world.remote_request(n, Kind::Operate(op));
        world.quiesce();
    }
    assert_eq!(world.m.state().name(), "Operated");
}

#[test]
fn exhaustive_state_by_request_matrix() {
    const OP: u32 = 5;
    let sharer_sets: [&[usize]; 3] = [&[1], &[2], &[1, 2]];
    let kinds = [Kind::Read, Kind::Write, Kind::Operate(OP), Kind::Operate(9)];
    let mut coverage = BTreeSet::new();

    // Every stable configuration of a 3-node cluster...
    type Config = Box<dyn Fn(&mut World)>;
    let mut configs: Vec<Config> = vec![Box::new(|_| {})];
    for s in sharer_sets {
        configs.push(Box::new(move |w| shared(w, s)));
        configs.push(Box::new(move |w| operated(w, OP, s)));
    }
    for owner in REMOTES {
        configs.push(Box::new(move |w| dirty(w, owner)));
    }

    // ...crossed with every request kind from every requester.
    for build in &configs {
        for kind in kinds {
            // Local requester.
            let mut w = World::new(0);
            build(&mut w);
            w.local_request(kind);
            w.quiesce();
            coverage.extend(w.request_coverage);

            // Every remote requester that does not already hold rights.
            for node in REMOTES {
                let mut w = World::new(0);
                build(&mut w);
                if w.rights[node] != R::None {
                    continue;
                }
                w.remote_request(node, kind);
                w.quiesce();
                coverage.extend(w.request_coverage);
            }
        }
    }

    // Every stable state saw every request kind from both requester sides.
    for state in ["Unshared", "Shared", "Dirty", "Operated"] {
        for kind in ["Read", "Write", "Operate"] {
            for src in ["Local", "Remote"] {
                assert!(
                    coverage.contains(&(state.to_string(), format!("{kind}:{src}"))),
                    "state x request pair never serviced: {state} x {kind}:{src}"
                );
            }
        }
    }
}

#[test]
fn random_interleavings_preserve_invariants() {
    let mut transient_coverage = BTreeSet::new();
    for seed in 0..48u64 {
        let grace = if seed % 2 == 0 { 0 } else { 40 };
        // A third of the seeds run with persist-before-ack enabled so the
        // interleavings also cross the `AwaitPersist` transient.
        let mut w = if seed % 3 == 0 {
            World::new_durable(grace)
        } else {
            World::new(grace)
        };
        let mut rng = Rng(seed.wrapping_mul(0x5851f42d4c957f2d) + 1);
        for _ in 0..300 {
            w.now += 1;
            // Prefer delivering outstanding replies; otherwise inject load.
            if !w.inflight.is_empty() && rng.below(3) != 0 {
                let i = rng.below(w.inflight.len());
                w.deliver(i);
                continue;
            }
            match rng.below(10) {
                // New work from a random requester.
                0..=4 => {
                    let kind = match rng.below(4) {
                        0 => Kind::Read,
                        1 => Kind::Write,
                        2 => Kind::Operate(5),
                        _ => Kind::Operate(9),
                    };
                    if rng.below(3) == 0 {
                        w.local_request(kind);
                    } else {
                        let node = REMOTES[rng.below(2)];
                        if w.rights[node] == R::None {
                            w.remote_request(node, kind);
                        }
                    }
                }
                // Voluntary eviction of a shared copy.
                5 => {
                    if w.m.transient().is_none() {
                        if let Some(&n) = REMOTES.iter().find(|&&n| w.rights[n] == R::Read) {
                            w.rights[n] = R::None;
                            w.feed(HomeEvent::EvictNotice { from: n }, "EvictNotice");
                        }
                    }
                }
                // Voluntary writeback by the Dirty owner.
                6 => {
                    if w.m.transient().is_none() {
                        if let Some(&n) = REMOTES.iter().find(|&&n| w.rights[n] == R::Write) {
                            w.rights[n] = R::None;
                            w.feed(
                                HomeEvent::Writeback {
                                    from: n,
                                    downgrade: false,
                                },
                                "Writeback",
                            );
                        }
                    }
                }
                // Voluntary flush by an Operated sharer.
                7 => {
                    if w.m.transient().is_none() {
                        let holder = REMOTES.iter().find_map(|&n| match w.rights[n] {
                            R::Op(o) => Some((n, o)),
                            _ => None,
                        });
                        if let Some((n, o)) = holder {
                            w.rights[n] = R::None;
                            w.feed(
                                HomeEvent::Flush {
                                    from: n,
                                    op: o,
                                    has_data: true,
                                },
                                "Flush",
                            );
                        }
                    }
                }
                // Stale ack noise: must be ignored outside an epoch.
                _ => {
                    if w.m.transient().is_none() {
                        let before = w.m.state().clone();
                        w.feed(
                            HomeEvent::InvAck {
                                from: REMOTES[rng.below(2)],
                            },
                            "InvAck",
                        );
                        assert_eq!(w.m.state(), &before, "stale InvAck changed state");
                    }
                }
            }
        }
        w.quiesce();
        transient_coverage.extend(w.transient_coverage);
    }

    // The interleavings reached every multi-message transition phase.
    for (transient, event) in [
        ("AwaitInvAcks", "InvAck"),
        ("AwaitWriteback", "Writeback"),
        ("AwaitFlushes", "Flush"),
        ("HomeDrain", "Drained"),
        ("GraceWait", "RetryExpired"),
        ("AwaitPersist", "PersistDone"),
    ] {
        assert!(
            transient_coverage.contains(&(transient.to_string(), event.to_string())),
            "transient x event pair never exercised: {transient} x {event}"
        );
    }
}

// ---------------------------------------------------------------------
// Requester-side machine: full view x event sweep.
// ---------------------------------------------------------------------

fn all_cache_events() -> Vec<CacheEvent> {
    use CacheEvent::*;
    let mut v = Vec::new();
    for kind in [Kind::Read, Kind::Write, Kind::Operate(5)] {
        for home_down in [false, true] {
            for drain_pending in [false, true] {
                v.push(Request {
                    kind,
                    home_down,
                    drain_pending,
                });
            }
        }
        v.push(LineAllocated { line: 3, kind });
    }
    for granted in [LocalState::Shared, LocalState::Exclusive] {
        v.push(FillDone { granted });
    }
    for op in [5, 9] {
        v.push(GrantDone { op });
        v.push(RecallOperated { op });
    }
    v.push(Invalidate { from: 0 });
    v.push(RecallDirty);
    v.push(DowngradeDirty);
    v.push(Evict);
    let afters = [
        AfterDrain::Invalidate {
            line: 3,
            reply_to: 0,
        },
        AfterDrain::WritebackInvalidate { line: 3 },
        AfterDrain::Downgrade { line: 3 },
        AfterDrain::FlushInvalidate { line: 3, op: 5 },
        AfterDrain::EvictShared { line: 3 },
        AfterDrain::Upgrade {
            line: 3,
            kind: Kind::Write,
        },
        AfterDrain::FlushThenUpgrade {
            line: 3,
            old_op: 5,
            kind: Kind::Operate(9),
        },
    ];
    for after in afters {
        for home_down in [false, true] {
            v.push(Drained { after, home_down });
        }
    }
    v.push(HomeDown);
    v
}

#[test]
fn cache_machine_total_over_view_event_product() {
    let states = [
        LocalState::Invalid,
        LocalState::Shared,
        LocalState::Exclusive,
        LocalState::Operated,
        LocalState::FillingShared,
        LocalState::FillingExclusive,
        LocalState::FillingOperated,
    ];
    let mut pairs = 0usize;
    for state in states {
        for line in [LINE_NONE, 3] {
            for draining in [false, true] {
                for op_tag in [NOTAG, 5] {
                    let view = CacheView {
                        state,
                        op_tag,
                        line,
                        draining,
                    };
                    for ev in all_cache_events() {
                        let is_request = matches!(ev, CacheEvent::Request { .. });
                        let acts = CacheMachine::on_event(&view, ev);
                        pairs += 1;
                        // The requester wait-cell is consumed exactly once
                        // on Request events and never otherwise — the
                        // executor relies on this to hand off the waiter.
                        let consumes = acts
                            .iter()
                            .filter(|a| {
                                matches!(a, CacheAction::QueueWaiter | CacheAction::WakeRequester)
                            })
                            .count();
                        if is_request {
                            assert_eq!(
                                consumes, 1,
                                "Request must queue or wake exactly once: {view:?} -> {acts:?}"
                            );
                        } else {
                            assert_eq!(
                                consumes, 0,
                                "non-Request event consumed a requester: {view:?} -> {acts:?}"
                            );
                        }
                        // A single event starts at most one drain and
                        // allocates at most one line.
                        for pat in [
                            acts.iter()
                                .filter(|a| matches!(a, CacheAction::BeginDrain { .. }))
                                .count(),
                            acts.iter()
                                .filter(|a| matches!(a, CacheAction::AllocLine { .. }))
                                .count(),
                        ] {
                            assert!(pat <= 1, "duplicated structural action: {acts:?}");
                        }
                    }
                }
            }
        }
    }
    // 7 states x 2 lines x 2 drain flags x 2 tags x |events|.
    assert!(pairs > 1_500, "sweep unexpectedly small: {pairs} pairs");
}
