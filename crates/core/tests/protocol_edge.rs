//! Additional protocol edge cases: shared-line eviction, pins under cache
//! pressure, custom chunk sizes, the atomic update API, mixed element
//! types, lock fairness, and repeated `Cluster::run` phases.

use darray::{ArrayOptions, Cluster, ClusterConfig, Ctx, PinMode, Sim, SimConfig};

fn with_cluster<R: Send + 'static>(
    cfg: ClusterConfig,
    f: impl FnOnce(&mut Ctx, &Cluster) -> R,
) -> R {
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let r = f(ctx, &cluster);
        cluster.shutdown(ctx);
        r
    })
}

#[test]
fn shared_lines_evict_and_refetch_correctly() {
    let mut cfg = ClusterConfig::test_config(2);
    cfg.cache.capacity_lines = 6;
    cfg.cache.prefetch_lines = 0;
    with_cluster(cfg, |ctx, cluster| {
        let arr = cluster.alloc_with::<u64>(64 * 512, ArrayOptions::default(), |i| i as u64);
        cluster.run(ctx, 1, move |ctx, env| {
            if env.node == 1 {
                let a = arr.on(1);
                // Two full passes over node 0's half: every chunk is read,
                // evicted (EvictNotice), and read again.
                for pass in 0..2 {
                    for c in 0..32 {
                        let i = c * 512 + 7;
                        assert_eq!(a.get(ctx, i), i as u64, "pass {pass} chunk {c}");
                    }
                }
            }
        });
        let s = cluster.stats(1);
        assert!(s.evictions > 20, "evictions = {}", s.evictions);
    });
}

#[test]
fn pinned_line_survives_cache_pressure() {
    let mut cfg = ClusterConfig::test_config(2);
    // The cache is per-runtime-thread pools; keep the cache tiny but give
    // every pool at least two lines (one pinned, one to thrash through),
    // whatever thread count the environment selects.
    cfg.cache.capacity_lines = 4.max(2 * cfg.runtime_threads);
    cfg.cache.prefetch_lines = 0;
    with_cluster(cfg, |ctx, cluster| {
        let arr = cluster.alloc_with::<u64>(64 * 512, ArrayOptions::default(), |i| i as u64);
        cluster.run(ctx, 1, move |ctx, env| {
            if env.node != 1 {
                return;
            }
            let a = arr.on(1);
            // Pin one remote chunk...
            let pin = a.pin(ctx, 512, PinMode::Read);
            // ...then thrash the rest of the tiny cache with other chunks.
            for c in 4..24 {
                let _ = a.get(ctx, c * 512 + 1);
            }
            // The pinned chunk must still read correctly without refetching.
            let misses_before = 0; // reads below must be pure hits
            let _ = misses_before;
            for i in pin.range().step_by(61) {
                assert_eq!(pin.get(ctx, i), i as u64);
            }
            pin.unpin();
        });
    });
}

#[test]
fn custom_chunk_size_arrays_work() {
    with_cluster(ClusterConfig::test_config(3), |ctx, cluster| {
        let opts = ArrayOptions {
            chunk_size: Some(128),
            partition_offset: None,
        };
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc_with::<u64>(128 * 9, opts, |i| i as u64);
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            assert_eq!(a.chunk_size(), 128);
            a.apply(ctx, 130, add, 1);
            env.barrier(ctx);
            assert_eq!(a.get(ctx, 130), 130 + 3);
            assert_eq!(a.get(ctx, 128 * 9 - 1), 128 * 9 - 1);
        });
    });
}

#[test]
fn update_is_atomic_across_nodes() {
    with_cluster(ClusterConfig::test_config(3), |ctx, cluster| {
        let arr = cluster.alloc::<u64>(512, ArrayOptions::default());
        cluster.run(ctx, 2, move |ctx, env| {
            let a = arr.on(env.node);
            for _ in 0..30 {
                a.update(ctx, 9, |v| v + 1);
            }
            env.barrier(ctx);
            assert_eq!(a.get(ctx, 9), 3 * 2 * 30);
        });
    });
}

#[test]
fn float_and_signed_arrays() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let addf = cluster.register_op("addf", 0.0f64, |a, b| a + b);
        let mini = cluster.register_op("mini", i64::MAX, |a: i64, b: i64| a.min(b));
        let fs = cluster.alloc::<f64>(1024, ArrayOptions::default());
        let is = cluster.alloc_with::<i64>(1024, ArrayOptions::default(), |_| 100);
        cluster.run(ctx, 1, move |ctx, env| {
            let f = fs.on(env.node);
            let i = is.on(env.node);
            f.apply(ctx, 3, addf, 0.25);
            i.apply(ctx, 700, mini, -(env.node as i64) - 1);
            env.barrier(ctx);
            assert_eq!(f.get(ctx, 3), 0.5);
            assert_eq!(i.get(ctx, 700), -2);
        });
    });
}

#[test]
fn writers_are_not_starved_by_reader_stream() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let arr = cluster.alloc::<u64>(512, ArrayOptions::default());
        cluster.run(ctx, 2, move |ctx, env| {
            let a = arr.on(env.node);
            if env.thread == 0 {
                // Reader stream hammering the lock.
                for _ in 0..40 {
                    a.rlock(ctx, 5);
                    let _ = a.get(ctx, 5);
                    a.unlock(ctx, 5);
                }
            } else {
                // Writers must make progress (FIFO lock queue).
                for _ in 0..10 {
                    a.wlock(ctx, 5);
                    let v = a.get(ctx, 5);
                    a.set(ctx, 5, v + 1);
                    a.unlock(ctx, 5);
                }
            }
            env.barrier(ctx);
            assert_eq!(a.get(ctx, 5), 20);
        });
    });
}

#[test]
fn repeated_run_phases_share_state() {
    with_cluster(ClusterConfig::test_config(2), |ctx, cluster| {
        let arr = cluster.alloc::<u64>(2048, ArrayOptions::default());
        let a1 = arr.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let a = a1.on(env.node);
            a.set(ctx, env.node * 1024, 7);
        });
        // Second phase sees the first phase's writes.
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            assert_eq!(a.get(ctx, 0), 7);
            assert_eq!(a.get(ctx, 1024), 7);
            env.barrier(ctx);
        });
    });
}

#[test]
fn grace_window_prevents_flag_chunk_starvation() {
    // Regression for the grant-starvation livelock: N nodes repeatedly
    // write their own slot of one falsely-shared chunk; with the grace
    // window each round costs bounded ownership transfers.
    with_cluster(ClusterConfig::with_nodes(6), |ctx, cluster| {
        let arr = cluster.alloc::<u64>(512, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            for round in 0..5u64 {
                a.set(ctx, env.node, round + 1);
                env.barrier(ctx);
                for n in 0..env.nodes {
                    assert_eq!(a.get(ctx, n), round + 1);
                }
                env.barrier(ctx);
            }
        });
        // Bounded protocol traffic: without the grace window this workload
        // generated thousands of writebacks.
        let total_wb: u64 = (0..6).map(|n| cluster.stats(n).writebacks).sum();
        assert!(total_wb < 400, "writebacks = {total_wb}");
    });
}
