//! Explicit-state **crash-consistency model checker** for the coherence
//! protocol core.
//!
//! A `World` is one home node (a real [`HomeMachine`] + [`LockTable`] plus
//! its dentry and drain/retry bookkeeping), two remote nodes (each a dentry
//! snapshot driven through the *pure* [`CacheMachine`] plus an application
//! slot and a lock slot), and four FIFO links (home→remote and remote→home
//! per remote). The checker runs a bounded depth-first search over every
//! interleaving of:
//!
//! * message deliveries (one per FIFO link),
//! * local drains (remote Figure-5 drains, the home drain, the grace retry),
//! * application requests (Read / Write / Operate, budget-limited),
//! * element-lock acquire/release (budget-limited),
//! * evictions (budget-limited), and
//! * **node kills** — fail-stop crashes modeled exactly as the runtime sees
//!   them: every surviving prefix of the victim's in-flight messages is
//!   explored, followed by a `Down` marker appended *last* on each link out
//!   of the victim (FIFO delivery means survivors consume all of the
//!   victim's accepted traffic before learning of its death). Since the
//!   quorum membership layer (DESIGN.md §12), the marker models a
//!   *quorum-confirmed* death declaration — it can only exist because the
//!   victim actually died, which is exactly the guarantee the quorum
//!   protocol provides; and
//! * **false suspicions** — the home may *suspect* a live remote
//!   (`Suspect`), which parks its outgoing link exactly as the reliability
//!   agent parks a suspected peer's send queue: nothing is discarded,
//!   delivery just stops. While the suspect is alive the only resolution is
//!   an internal `Refute` (its heartbeats keep its lease fresh at the other
//!   voters, so the quorum can never confirm), which unparks the link and
//!   replays delivery in order. If the suspect *is* killed mid-suspicion,
//!   its `Down` marker confirms the death instead. Safety asserts a live
//!   peer is never declared dead, so no reachable interleaving reclaims a
//!   live peer's locks or discards its Dirty writes.
//!
//! States are memoized by a canonical encoding (the derived `Debug` string,
//! hashed), so the search explores each reachable world once. At every
//! state the checker asserts crash-safety invariants (single writer, no
//! bookkeeping references to known-dead nodes, no orphaned lock holders);
//! at every *quiescent* state (no internal transition enabled) it asserts
//! liveness: no transient pending, no application thread parked forever,
//! every lock waiter has a live holder to wait on, and the directory agrees
//! with every survivor's dentry. Any violation prints (and writes to
//! `DARRAY_MC_TRACE_FILE`) the full transition trace that reached it — a
//! minimized counterexample by construction, since DFS reports the first
//! path found at the shallowest unexplored depth.
//!
//! Knobs (env): `DARRAY_MC_MAX_DEPTH`, `DARRAY_MC_MIN_STATES`,
//! `DARRAY_MC_MAX_STATES`, `DARRAY_MC_TRACE_FILE`.

use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

use darray::protocol::{
    AfterDrain, CacheAction, CacheEvent, CacheMachine, CacheView, Counter, HomeAction, HomeEvent,
    HomeMachine, Kind, LockKind, LockSource, LockTable, Request, Requester, LINE_NONE, NOTAG,
};
use darray::{DirState, LocalState};

/// Node id of the home node.
const HOME: usize = 0;
/// Number of remote nodes (node ids `1..=NREM`).
const NREM: usize = 2;
/// The single lock element the model contends on.
const ELEM: u64 = 7;
/// The operator id used by `Kind::Operate` requests.
const OP: u32 = 7;
/// Completion token for the home node's application slot.
const APP_TOKEN: u32 = 100;
/// Completion token for the home node's lock slot.
const LOCK_TOKEN: u32 = 200;
/// The one cacheline index the model allocates.
const LINE: u32 = 1;

const KINDS: [Kind; 3] = [Kind::Read, Kind::Write, Kind::Operate(OP)];
const LKINDS: [LockKind; 2] = [LockKind::Read, LockKind::Write];

// ---------------------------------------------------------------------------
// World state
// ---------------------------------------------------------------------------

/// One in-flight message. Links are FIFO; `Down` is the failure-detector
/// marker and is always the last message on a dead node's link.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Msg {
    // home → remote
    Fill {
        exclusive: bool,
    },
    Grant {
        op: u32,
    },
    Inv,
    RecallDirty,
    Downgrade,
    RecallOperated {
        op: u32,
    },
    LockGrant {
        kind: LockKind,
    },
    // remote → home
    Req {
        kind: Kind,
    },
    InvAck,
    EvictNotice,
    Writeback {
        downgrade: bool,
    },
    Flush {
        op: u32,
    },
    LockAcq {
        kind: LockKind,
    },
    LockRel {
        kind: LockKind,
    },
    // either direction
    Down {
        dead: usize,
    },
    /// The home's *new incarnation* announcing itself after a restart
    /// (`RtMsg::PeerRestarted` fan-out): the remote must treat every right
    /// granted by the old incarnation as void.
    Restarted,
}

/// One node's application slot: at most one outstanding data request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum App {
    Idle,
    Waiting(Kind),
}

/// One node's lock slot: at most one outstanding element-lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lock {
    Idle,
    Waiting(LockKind),
    Holding(LockKind),
}

/// A remote node: the dentry the cache machine sees, plus app/lock slots
/// and the budgets bounding how many external stimuli it may still issue.
#[derive(Debug, Clone)]
struct Remote {
    alive: bool,
    state: LocalState,
    op_tag: u32,
    line: u32,
    /// `Some` while a Figure-5 drain is pending (the continuation).
    after: Option<AfterDrain>,
    /// Has this node consumed the home's `Down` marker?
    home_down: bool,
    app: App,
    lock: Lock,
    req_budget: u8,
    lock_budget: u8,
    evict_budget: u8,
}

impl Remote {
    fn fresh(req_budget: u8, lock_budget: u8, evict_budget: u8) -> Self {
        Remote {
            alive: true,
            state: LocalState::Invalid,
            op_tag: NOTAG,
            line: LINE_NONE,
            after: None,
            home_down: false,
            app: App::Idle,
            lock: Lock::Idle,
            req_budget,
            lock_budget,
            evict_budget,
        }
    }

    /// Canonical corpse: every field zeroed so all post-mortem worlds that
    /// differ only in the victim's final state collapse into one.
    fn dead() -> Self {
        Remote {
            alive: false,
            state: LocalState::Invalid,
            op_tag: NOTAG,
            line: LINE_NONE,
            after: None,
            home_down: false,
            app: App::Idle,
            lock: Lock::Idle,
            req_budget: 0,
            lock_budget: 0,
            evict_budget: 0,
        }
    }
}

/// The home node: the real directory machine and lock table, the home
/// dentry, and the home's own app/lock slots.
#[derive(Debug, Clone)]
struct Home {
    m: HomeMachine<u32>,
    locks: LockTable<u32>,
    /// The home dentry: (local state, operator tag).
    dentry: (LocalState, u32),
    /// A home-dentry reference drain is pending.
    draining: bool,
    /// Which remotes this node's failure detector has declared dead.
    knows_dead: [bool; NREM],
    app: App,
    lock: Lock,
    req_budget: u8,
    lock_budget: u8,
}

/// One explorable world state. The derived `Debug` string is the canonical
/// encoding used for memoization — every field that influences future
/// behavior must live here (and nothing else: accounting lives in [`Ck`]).
#[derive(Debug, Clone)]
struct World {
    /// `None` once the home node has been killed.
    home: Option<Home>,
    rem: [Remote; NREM],
    /// FIFO link home → remote `i+1`.
    h2r: [VecDeque<Msg>; NREM],
    /// FIFO link remote `i+1` → home.
    r2h: [VecDeque<Msg>; NREM],
    now: u64,
    /// A `ScheduleRetry { at }` is pending delivery.
    retry_at: Option<u64>,
    kill_budget: u8,
    /// Home-side suspicion flags: while `suspected[i]` the home's outgoing
    /// link to remote `i+1` is parked (no `DeliverH2R`), mirroring the
    /// reliability agent parking a suspected peer's send queue. Nothing is
    /// dropped; `Refute` (live suspect) or the `Down` marker (dead suspect)
    /// resolves it.
    suspected: [bool; NREM],
    /// How many `Suspect` stimuli may still be injected.
    suspect_budget: u8,
    /// Durable mode (DESIGN.md §14): the home machine gates dirty-data
    /// acknowledgements on a modeled chunk-store persist.
    durable: bool,
    /// A `PersistChunk { seq }` the executor has accepted but whose
    /// completion (`PersistDone`) has not yet been fed back. At most one:
    /// the machine parks in `AwaitPersist` until it resolves.
    pending_persist: Option<u64>,
    /// Highest persist sequence durably in the log. Survives home kills —
    /// that is the entire point of the log.
    disk_seq: u64,
    /// Highest persist sequence the protocol has *acknowledged* (completed
    /// the transient for). The persist-before-ack theorem is
    /// `acked_seq <= disk_seq` in every reachable state.
    acked_seq: u64,
    /// How many node restarts may still be injected.
    restart_budget: u8,
    /// Persist seq covered by the newest on-disk checkpoint generation
    /// (`.ckpt`), `None` when absent. Survives home kills — it is a file.
    ckpt: Option<u64>,
    /// Persist seq covered by the previous generation (`.ckpt.prev`) — the
    /// fallback a torn/CRC-bad newest checkpoint recovers from.
    ckpt_prev: Option<u64>,
    /// Highest seq whose log record compaction has truncated away. The
    /// lag-by-one rule keeps `trunc_floor <= ckpt_prev`: only the prefix
    /// covered by the *fallback* generation is ever dropped.
    trunc_floor: u64,
    /// An in-flight compaction: `(snapshot seq, next phase)`. Erased by a
    /// home kill — phases already applied are on disk, the rest never run.
    compacting: Option<(u64, CkPhase)>,
    /// How many compaction sequences may still be started.
    compact_budget: u8,
}

/// The crash-atomic phases of `LogChunkStore::checkpoint` (DESIGN.md §14),
/// in execution order. Each phase is one atomic disk operation (buffered
/// write + fsync, or a rename); the checker kills the home *between* any
/// two of them, which — together with each operation's own atomicity — is
/// exactly "a crash at any byte of the compaction sequence".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CkPhase {
    /// Write the full image to `.ckpt.tmp` and fsync it. Invisible to
    /// recovery: reopen deletes stale tmp files.
    WriteTmp,
    /// Rotate `.ckpt` → `.ckpt.prev`. The newest generation is momentarily
    /// absent; recovery in this window falls back to `.prev`.
    Rotate,
    /// Rename `.ckpt.tmp` → `.ckpt` (atomic): the new generation lands.
    Rename,
    /// Truncate the log prefix covered by `.ckpt.prev` (lag-by-one).
    Truncate,
}

impl CkPhase {
    fn name(self) -> &'static str {
        match self {
            CkPhase::WriteTmp => "WriteTmp",
            CkPhase::Rotate => "Rotate",
            CkPhase::Rename => "Rename",
            CkPhase::Truncate => "Truncate",
        }
    }
}

/// What a reopen of the modeled store recovers: the newest readable
/// checkpoint generation (`.ckpt`, falling back to `.prev` when absent or
/// torn — torn collapses to absent here, the CRC frame rejects it in full)
/// overlaid with the log suffix `(trunc_floor, disk_seq]`. A sound store
/// keeps every fallback generation ≥ `trunc_floor`, so the suffix splices
/// onto the checkpoint with no gap; if compaction ever truncated past the
/// fallback, the writes in the gap are gone and this returns less than
/// `disk_seq` — which the `acked_seq` safety check then catches.
fn recoverable(w: &World) -> u64 {
    let best = w.ckpt.or(w.ckpt_prev).unwrap_or(0);
    if best >= w.trunc_floor {
        best.max(w.disk_seq)
    } else {
        best
    }
}

// ---------------------------------------------------------------------------
// Checker context (not part of the state key)
// ---------------------------------------------------------------------------

/// Search bookkeeping and coverage tallies, deliberately *outside* the
/// memoized state so accounting never splits otherwise-identical worlds.
struct Ck {
    grace: u64,
    max_depth: usize,
    max_states: usize,
    seen: HashSet<u64>,
    depth_pruned: usize,
    quiescent_states: usize,
    /// Home transient name at the instant each `Down` marker was consumed.
    pd_transients: HashSet<&'static str>,
    /// Home directory-state name at the instant each `Down` was consumed.
    pd_states: HashSet<&'static str>,
    /// Remote dentry state at the instant the home's `Down` was consumed.
    homedown_states: HashSet<&'static str>,
    /// Home transient name at each `RetryExpired` delivery.
    retry_transients: HashSet<&'static str>,
    epochs_aborted: usize,
    sharers_pruned: usize,
    locks_reclaimed: usize,
    reductions: usize,
    /// Suspicions of a live remote resolved by refutation.
    suspect_refutes: usize,
    /// Suspicions resolved by the suspect's actual death (its `Down` marker
    /// consumed while the suspicion was pending).
    suspect_confirms: usize,
    /// A live remote held Exclusive (unwritten Dirty data) while suspected —
    /// the exact state a unilateral declaration would destroy.
    suspected_dirty_states: usize,
    /// `PersistChunk` actions executed (durable mode).
    persists: usize,
    /// Persists the machine acknowledged (`Count(FlushPersists)`).
    persist_acks: usize,
    /// Home kills that landed while a persist was pending on disk.
    killed_mid_persist: usize,
    /// Home restarts (log replay + `Restarted` fan-out) injected.
    home_restarts: usize,
    /// Remote restarts (`HomeEvent::PeerRestarted` un-fencing) injected.
    remote_restarts: usize,
    /// Compaction sequences started (`StartCompaction` stimuli).
    compactions_started: usize,
    /// Compaction sequences that ran all four phases to completion.
    compactions_completed: usize,
    /// Phase names a home kill landed in while a compaction was in flight —
    /// the snapshot→rename→truncate crash matrix must cover all four.
    killed_mid_compaction: HashSet<&'static str>,
    /// Home restarts that recovered through a checkpoint generation (not
    /// pure log replay).
    restarts_from_checkpoint: usize,
    /// Simultaneous two-victim kills injected (`KillBoth`).
    double_kills: usize,
    /// Reachable states in which the home had confirmed BOTH remote deaths.
    both_dead_states: usize,
}

impl Ck {
    fn new(grace: u64) -> Self {
        Ck {
            grace,
            max_depth: env_usize("DARRAY_MC_MAX_DEPTH", 96),
            max_states: env_usize("DARRAY_MC_MAX_STATES", 5_000_000),
            seen: HashSet::new(),
            depth_pruned: 0,
            quiescent_states: 0,
            pd_transients: HashSet::new(),
            pd_states: HashSet::new(),
            homedown_states: HashSet::new(),
            retry_transients: HashSet::new(),
            epochs_aborted: 0,
            sharers_pruned: 0,
            locks_reclaimed: 0,
            reductions: 0,
            suspect_refutes: 0,
            suspect_confirms: 0,
            suspected_dirty_states: 0,
            persists: 0,
            persist_acks: 0,
            killed_mid_persist: 0,
            home_restarts: 0,
            remote_restarts: 0,
            compactions_started: 0,
            compactions_completed: 0,
            killed_mid_compaction: HashSet::new(),
            restarts_from_checkpoint: 0,
            double_kills: 0,
            both_dead_states: 0,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Report a violation: compose the counterexample (transition trace + final
/// world), write it to `DARRAY_MC_TRACE_FILE` (or the default path under
/// `target/`), print it, and abort the test.
fn fail(ck: &Ck, trace: &[String], w: &World, msg: &str) -> ! {
    let mut report = String::new();
    let _ = writeln!(report, "MODEL CHECK FAILED: {msg}");
    let _ = writeln!(
        report,
        "states explored: {} (grace={}ns)",
        ck.seen.len(),
        ck.grace
    );
    let _ = writeln!(report, "counterexample trace ({} steps):", trace.len());
    for (i, step) in trace.iter().enumerate() {
        let _ = writeln!(report, "  {:3}. {step}", i + 1);
    }
    let _ = writeln!(report, "final world:\n{w:#?}");
    let path = std::env::var("DARRAY_MC_TRACE_FILE").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/model-check-counterexample.txt"
        )
        .to_string()
    });
    let _ = std::fs::write(&path, &report);
    eprintln!("{report}");
    eprintln!("(trace written to {path})");
    panic!("model check failed: {msg}");
}

// ---------------------------------------------------------------------------
// Transitions
// ---------------------------------------------------------------------------

/// One atomic step of the world. `Deliver*`, `Drain*` and `Retry` are
/// *internal* (protocol progress); the rest are external stimuli. A state
/// with no internal transition enabled is *quiescent* and must satisfy the
/// liveness conditions of [`check_quiescence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tr {
    DeliverH2R(usize),
    DeliverR2H(usize),
    DrainRemote(usize),
    DrainHome,
    Retry,
    AppHome(Kind),
    AppRemote(usize, Kind),
    LockHomeAcq(LockKind),
    LockHomeRel,
    LockRemoteAcq(usize, LockKind),
    LockRemoteRel(usize),
    Evict(usize),
    /// Kill `victim`, keeping the first `keep[i]` messages of each of its
    /// outgoing links (prefix truncation models messages lost in flight).
    /// `flush_disk` branches the fate of a pending persist when the home is
    /// the victim: did the record reach the log before the crash?
    Kill {
        victim: usize,
        keep: [usize; 2],
        flush_disk: bool,
    },
    /// Kill BOTH remotes at once — two simultaneous quorum-confirmed
    /// deaths, each with its own surviving prefix. Costs two kill budget.
    KillBoth {
        keep: [usize; 2],
    },
    /// Begin a checkpoint/compaction sequence (durable mode): snapshot the
    /// synced log (`disk_seq`) and walk the [`CkPhase`] ladder.
    StartCompaction,
    /// The store executes the next compaction phase (guaranteed progress —
    /// `checkpoint` runs synchronously under the store lock).
    CompactStep,
    /// The modeled disk completes the pending persist: the record is in the
    /// log and `HomeEvent::PersistDone` resumes the parked acknowledgement.
    PersistDone,
    /// Restart `victim` (durable mode): a new incarnation rejoins cold,
    /// recovering only what the log holds.
    Restart {
        victim: usize,
    },
    /// The home's failure detector (falsely or not) suspects remote `i+1`:
    /// park the home→remote link.
    Suspect(usize),
    /// The quorum poll refutes the home's suspicion of (live) remote `i+1`:
    /// re-admit and resume parked delivery.
    Refute(usize),
}

/// Does `state`/`tag` already satisfy a request of `kind` locally (the
/// fast-path hit the runtime would take without consulting the protocol)?
fn satisfied(state: LocalState, tag: u32, kind: Kind) -> bool {
    match kind {
        Kind::Read => state.readable(),
        Kind::Write => state.writable(),
        Kind::Operate(op) => state.writable() || (state == LocalState::Operated && tag == op),
    }
}

fn internal_transitions(w: &World) -> Vec<Tr> {
    let mut out = Vec::new();
    for i in 0..NREM {
        // A suspected remote's inbound link is parked at the home's
        // reliability agent — deliverable again only after the suspicion
        // resolves.
        let parked = w.home.is_some() && w.suspected[i];
        if w.rem[i].alive && !w.h2r[i].is_empty() && !parked {
            out.push(Tr::DeliverH2R(i));
        }
        if w.home.is_some() && !w.r2h[i].is_empty() {
            out.push(Tr::DeliverR2H(i));
        }
        if w.rem[i].alive && w.rem[i].after.is_some() {
            out.push(Tr::DrainRemote(i));
        }
        // A live suspect keeps heartbeating, so refutation is *guaranteed*
        // progress in the real system — which makes it an internal
        // transition here (a suspicion of a live peer can never be the end
        // state, so a parked world is not quiescent).
        if parked && w.rem[i].alive {
            out.push(Tr::Refute(i));
        }
    }
    if let Some(h) = &w.home {
        if h.draining {
            out.push(Tr::DrainHome);
        }
        if w.retry_at.is_some() {
            out.push(Tr::Retry);
        }
        // Disk completion is guaranteed progress: a pending persist always
        // resolves (crash-during-persist is the Kill branch's job).
        if w.pending_persist.is_some() {
            out.push(Tr::PersistDone);
        }
        // A compaction in flight always advances to its next phase
        // (crash-mid-compaction is, again, the Kill branch's job).
        if w.compacting.is_some() {
            out.push(Tr::CompactStep);
        }
    }
    out
}

fn external_transitions(w: &World) -> Vec<Tr> {
    let mut out = Vec::new();
    if let Some(h) = &w.home {
        if h.app == App::Idle && h.req_budget > 0 {
            for kind in KINDS {
                if !satisfied(h.dentry.0, h.dentry.1, kind) {
                    out.push(Tr::AppHome(kind));
                }
            }
        }
        match h.lock {
            Lock::Idle if h.lock_budget > 0 => {
                for lk in LKINDS {
                    out.push(Tr::LockHomeAcq(lk));
                }
            }
            Lock::Holding(_) => out.push(Tr::LockHomeRel),
            _ => {}
        }
    }
    for (i, r) in w.rem.iter().enumerate() {
        if !r.alive {
            continue;
        }
        if r.app == App::Idle && r.req_budget > 0 && !r.home_down {
            for kind in KINDS {
                if !satisfied(r.state, r.op_tag, kind) {
                    out.push(Tr::AppRemote(i, kind));
                }
            }
        }
        match r.lock {
            Lock::Idle if r.lock_budget > 0 && !r.home_down => {
                for lk in LKINDS {
                    out.push(Tr::LockRemoteAcq(i, lk));
                }
            }
            Lock::Holding(_) => out.push(Tr::LockRemoteRel(i)),
            _ => {}
        }
        if r.evict_budget > 0
            && r.after.is_none()
            && matches!(
                r.state,
                LocalState::Shared | LocalState::Exclusive | LocalState::Operated
            )
        {
            out.push(Tr::Evict(i));
        }
    }
    // Suspect a live remote: the false-suspicion stimulus. (Suspecting a
    // node that is already dead is the Kill path — its marker is the
    // confirmation — so the stimulus targets live peers, where a unilateral
    // declaration would be unsound.)
    if w.home.is_some() && w.suspect_budget > 0 {
        for i in 0..NREM {
            if w.rem[i].alive && !w.suspected[i] {
                out.push(Tr::Suspect(i));
            }
        }
    }
    if w.kill_budget > 0 {
        // Kill the home: branch over every surviving prefix of each
        // home→remote link (the product; each link truncates independently).
        // With a persist pending, also branch on whether its record reached
        // the log before the crash.
        if w.home.is_some() {
            for k0 in 0..=w.h2r[0].len() {
                for k1 in 0..=w.h2r[1].len() {
                    out.push(Tr::Kill {
                        victim: HOME,
                        keep: [k0, k1],
                        flush_disk: false,
                    });
                    if w.pending_persist.is_some() {
                        out.push(Tr::Kill {
                            victim: HOME,
                            keep: [k0, k1],
                            flush_disk: true,
                        });
                    }
                }
            }
        }
        // Kill remote node 1 (the protagonist remote; killing node 2 adds
        // symmetric states without new behavior since budgets differ).
        if w.rem[0].alive && w.home.is_some() {
            for k0 in 0..=w.r2h[0].len() {
                out.push(Tr::Kill {
                    victim: 1,
                    keep: [k0, 0],
                    flush_disk: false,
                });
            }
        }
        // Double kill: the quorum confirms TWO simultaneous deaths — the
        // membership axis a single-kill budget can never reach. Both
        // remotes die at once, each in-flight link keeping an independent
        // surviving prefix; the home consumes the two Down markers in
        // either order, burning one view epoch per death.
        if w.kill_budget >= 2 && w.home.is_some() && w.rem[0].alive && w.rem[1].alive {
            for k0 in 0..=w.r2h[0].len() {
                for k1 in 0..=w.r2h[1].len() {
                    out.push(Tr::KillBoth { keep: [k0, k1] });
                }
            }
        }
    }
    // Start a compaction at any point the store could: the runtime polls
    // `maybe_checkpoint` after each persist and at every eviction-scan
    // batch point, so between any two protocol steps is fair game. An
    // empty store has nothing to snapshot (the real trigger counts
    // persists), and the store lock serializes sequences.
    if w.durable
        && w.compact_budget > 0
        && w.compacting.is_none()
        && w.home.is_some()
        && w.disk_seq > 0
    {
        out.push(Tr::StartCompaction);
    }
    if w.durable && w.restart_budget > 0 {
        // Restarts model `Cluster::restart_peer`, whose contract is a
        // *settled* death: every survivor has consumed the declaration and
        // has nothing in flight against the corpse (in the runtime this is
        // guaranteed by re-admitting between `run` phases — a still-parked
        // app thread would have kept the previous phase from joining).
        // Racing an unsettled death is out of contract: a survivor could
        // address the new incarnation before processing the stale death
        // declaration of the old one.
        let settled = |i: usize| {
            let r = &w.rem[i];
            !r.alive
                || (r.home_down
                    && w.h2r[i].is_empty()
                    && w.r2h[i].is_empty()
                    && r.after.is_none()
                    && !r.state.in_flight()
                    && r.app == App::Idle
                    && matches!(r.lock, Lock::Idle | Lock::Holding(_)))
        };
        // Restart the home: only meaningful durable — a new incarnation
        // replays the log and re-announces itself to the survivors.
        if w.home.is_none() && (0..NREM).all(settled) {
            out.push(Tr::Restart { victim: HOME });
        }
        // Restart remote 1: the home un-fences the identity at a bumped
        // view epoch and serves its fresh (cold) requests again.
        if !w.rem[0].alive
            && w.home.as_ref().is_some_and(|h| h.knows_dead[0])
            && w.h2r[0].is_empty()
            && w.r2h[0].is_empty()
        {
            out.push(Tr::Restart { victim: 1 });
        }
    }
    out
}

/// Human-readable label for one transition (peeking the message about to be
/// delivered), used in counterexample traces.
fn label(w: &World, tr: Tr) -> String {
    match tr {
        Tr::DeliverH2R(i) => format!("deliver home->r{}: {:?}", i + 1, w.h2r[i].front().unwrap()),
        Tr::DeliverR2H(i) => format!("deliver r{}->home: {:?}", i + 1, w.r2h[i].front().unwrap()),
        Tr::DrainRemote(i) => format!(
            "drain completes on r{}: {:?}",
            i + 1,
            w.rem[i].after.as_ref().unwrap()
        ),
        Tr::DrainHome => "home dentry drain completes".to_string(),
        Tr::Retry => format!("grace retry fires (at={:?})", w.retry_at.unwrap()),
        Tr::AppHome(k) => format!("home app requests {k:?}"),
        Tr::AppRemote(i, k) => format!("r{} app requests {k:?}", i + 1),
        Tr::LockHomeAcq(k) => format!("home acquires {k:?} lock"),
        Tr::LockHomeRel => "home releases its lock".to_string(),
        Tr::LockRemoteAcq(i, k) => format!("r{} acquires {k:?} lock", i + 1),
        Tr::LockRemoteRel(i) => format!("r{} releases its lock", i + 1),
        Tr::Evict(i) => format!("eviction scan hits r{}", i + 1),
        Tr::Kill {
            victim,
            keep,
            flush_disk,
        } => format!(
            "KILL node {victim} (kept prefixes {keep:?}, pending persist {})",
            if flush_disk { "flushed" } else { "lost" }
        ),
        Tr::KillBoth { keep } => {
            format!("KILL BOTH remotes (kept prefixes {keep:?}, two confirmed deaths)")
        }
        Tr::StartCompaction => format!("compaction starts (snapshot seq {})", w.disk_seq),
        Tr::CompactStep => format!(
            "compaction phase {} executes",
            w.compacting.unwrap().1.name()
        ),
        Tr::Suspect(i) => format!("home SUSPECTS r{} (link parked)", i + 1),
        Tr::Refute(i) => format!("suspicion of r{} refuted (link replayed)", i + 1),
        Tr::PersistDone => format!("disk completes persist seq {}", w.pending_persist.unwrap()),
        Tr::Restart { victim } => format!(
            "RESTART node {victim} (log replay, disk_seq={})",
            w.disk_seq
        ),
    }
}

// ---------------------------------------------------------------------------
// Execution: apply a transition to a world
// ---------------------------------------------------------------------------

fn apply(w: &mut World, ck: &mut Ck, trace: &[String], tr: Tr) {
    match tr {
        Tr::DeliverH2R(i) => {
            let msg = w.h2r[i].pop_front().unwrap();
            deliver_to_remote(w, ck, trace, i, msg);
        }
        Tr::DeliverR2H(i) => {
            let msg = w.r2h[i].pop_front().unwrap();
            deliver_to_home(w, ck, trace, i, msg);
        }
        Tr::DrainRemote(i) => {
            let after = w.rem[i].after.take().unwrap();
            let home_down = w.rem[i].home_down;
            run_cache_event(w, ck, trace, i, CacheEvent::Drained { after, home_down });
        }
        Tr::DrainHome => {
            w.home.as_mut().unwrap().draining = false;
            run_home_event(w, ck, trace, HomeEvent::Drained);
        }
        Tr::Retry => {
            let at = w.retry_at.take().unwrap();
            w.now = w.now.max(at);
            ck.retry_transients
                .insert(w.home.as_ref().unwrap().m.transient().name());
            run_home_event(w, ck, trace, HomeEvent::RetryExpired);
        }
        Tr::AppHome(kind) => {
            let h = w.home.as_mut().unwrap();
            h.app = App::Waiting(kind);
            h.req_budget -= 1;
            run_home_event(
                w,
                ck,
                trace,
                HomeEvent::Request(Request {
                    source: Requester::Local(APP_TOKEN),
                    kind,
                }),
            );
        }
        Tr::AppRemote(i, kind) => {
            let r = &mut w.rem[i];
            r.app = App::Waiting(kind);
            r.req_budget -= 1;
            let drain_pending = r.after.is_some();
            run_cache_event(
                w,
                ck,
                trace,
                i,
                CacheEvent::Request {
                    kind,
                    home_down: false,
                    drain_pending,
                },
            );
        }
        Tr::LockHomeAcq(lk) => {
            let h = w.home.as_mut().unwrap();
            h.lock_budget -= 1;
            h.lock = Lock::Waiting(lk);
            let granted = h.locks.acquire(ELEM, lk, LockSource::Local(LOCK_TOKEN));
            if let Some(src) = granted {
                deliver_lock_grants(w, ck, trace, vec![(src, lk)]);
            }
        }
        Tr::LockHomeRel => {
            let h = w.home.as_mut().unwrap();
            let Lock::Holding(lk) = h.lock else {
                unreachable!()
            };
            h.lock = Lock::Idle;
            let granted = h.locks.release(ELEM, lk, None);
            deliver_lock_grants(w, ck, trace, granted);
        }
        Tr::LockRemoteAcq(i, lk) => {
            let r = &mut w.rem[i];
            r.lock_budget -= 1;
            r.lock = Lock::Waiting(lk);
            w.r2h[i].push_back(Msg::LockAcq { kind: lk });
        }
        Tr::LockRemoteRel(i) => {
            let r = &mut w.rem[i];
            let Lock::Holding(lk) = r.lock else {
                unreachable!()
            };
            r.lock = Lock::Idle;
            if w.home.is_some() {
                w.r2h[i].push_back(Msg::LockRel { kind: lk });
            }
            // Home already dead: the release would be sent to a corpse; the
            // home's lock table died with it, so dropping is sound.
        }
        Tr::Evict(i) => {
            w.rem[i].evict_budget -= 1;
            run_cache_event(w, ck, trace, i, CacheEvent::Evict);
        }
        Tr::Suspect(i) => {
            w.suspect_budget -= 1;
            w.suspected[i] = true;
        }
        Tr::Refute(i) => {
            ck.suspect_refutes += 1;
            w.suspected[i] = false;
        }
        Tr::PersistDone => {
            let seq = w.pending_persist.take().unwrap();
            w.disk_seq = w.disk_seq.max(seq);
            // The machine will acknowledge its awaited sequence (the fed
            // seq covers it — persists are cumulative); record the ack for
            // the persist-before-ack theorem *before* the protocol resumes.
            if let darray::protocol::Transient::AwaitPersist { seq: s } =
                w.home.as_ref().unwrap().m.transient()
            {
                if seq >= *s {
                    w.acked_seq = w.acked_seq.max(*s);
                }
            }
            run_home_event(w, ck, trace, HomeEvent::PersistDone { seq });
        }
        Tr::StartCompaction => {
            w.compact_budget -= 1;
            ck.compactions_started += 1;
            // Phase zero of `checkpoint`: flush + sync the log. The model's
            // `disk_seq` is already the synced log (persists land there via
            // PersistDone / flush_disk), so the snapshot is just its
            // current value.
            w.compacting = Some((w.disk_seq, CkPhase::WriteTmp));
        }
        Tr::CompactStep => {
            let (snap, phase) = w.compacting.unwrap();
            match phase {
                CkPhase::WriteTmp => {
                    // `.ckpt.tmp` written + fsynced: no durable-state
                    // change visible to recovery (reopen deletes tmps).
                    w.compacting = Some((snap, CkPhase::Rotate));
                }
                CkPhase::Rotate => {
                    // `.ckpt` → `.ckpt.prev` (skipped when no newest
                    // generation exists, exactly like the store).
                    if let Some(c) = w.ckpt.take() {
                        w.ckpt_prev = Some(c);
                    }
                    w.compacting = Some((snap, CkPhase::Rename));
                }
                CkPhase::Rename => {
                    // `.ckpt.tmp` → `.ckpt`, atomic: the new generation —
                    // covering every persist up to the snapshot — lands.
                    w.ckpt = Some(snap);
                    w.compacting = Some((snap, CkPhase::Truncate));
                }
                CkPhase::Truncate => {
                    // Lag-by-one: drop only the log prefix covered by the
                    // generation just rotated to `.prev`, so a torn newest
                    // checkpoint plus the truncated log still recovers
                    // every record. (Truncating up to `snap` here instead
                    // is the classic lost-window bug — the checker's
                    // Rotate-phase kill would catch it via `recoverable`.)
                    w.trunc_floor = w.trunc_floor.max(w.ckpt_prev.unwrap_or(0));
                    w.compacting = None;
                    ck.compactions_completed += 1;
                }
            }
        }
        Tr::Restart { victim } => {
            w.restart_budget -= 1;
            if victim == HOME {
                ck.home_restarts += 1;
                if w.ckpt.or(w.ckpt_prev).is_some() {
                    ck.restarts_from_checkpoint += 1;
                }
                // Reopen recovers checkpoint-then-log-suffix: the new
                // incarnation's replay frontier is exactly what the disk
                // yields. In a sound store this equals `disk_seq`; if
                // compaction ever truncated a window no checkpoint covers,
                // this drops below `acked_seq` and safety fails on the
                // next state.
                w.disk_seq = recoverable(w);
                // A new incarnation: fresh machine, cold directory, persist
                // sequence resumed from the replayed log (exactly what
                // `LogChunkStore::open` + the allocation overlay do).
                let mut m = HomeMachine::new();
                m.set_durable(true);
                m.resume_persist_seq(w.disk_seq);
                w.home = Some(Home {
                    m,
                    locks: LockTable::default(),
                    dentry: (LocalState::Exclusive, NOTAG),
                    draining: false,
                    knows_dead: [false; NREM],
                    app: App::Idle,
                    lock: Lock::Idle,
                    req_budget: 0,
                    lock_budget: 0,
                });
                // Announce the new incarnation to every survivor, FIFO
                // *after* the old incarnation's Down marker: a remote always
                // learns of the death before the rebirth.
                for (i, r) in w.rem.iter().enumerate() {
                    if r.alive {
                        w.h2r[i].push_back(Msg::Restarted);
                    }
                }
            } else {
                let i = victim - 1;
                ck.remote_restarts += 1;
                // The restarted remote rejoins cold with a small budget to
                // prove the un-fenced home serves it again.
                w.rem[i] = Remote::fresh(1, 0, 0);
                w.h2r[i].clear();
                w.r2h[i].clear();
                let h = w.home.as_mut().unwrap();
                h.knows_dead[i] = false;
                // The restart admission burns a fresh membership epoch on
                // top of whatever deaths the view has already applied
                // (`MembershipView::restart`).
                let view_epoch = h.m.view_epoch() + 1;
                run_home_event(
                    w,
                    ck,
                    trace,
                    HomeEvent::PeerRestarted {
                        node: victim,
                        view_epoch,
                    },
                );
            }
        }
        Tr::Kill {
            victim,
            keep,
            flush_disk,
        } => {
            w.kill_budget -= 1;
            if victim == HOME {
                // A pending persist dies with the executor; `flush_disk`
                // decides whether its record made the log first.
                if let Some(seq) = w.pending_persist.take() {
                    ck.killed_mid_persist += 1;
                    if flush_disk {
                        w.disk_seq = w.disk_seq.max(seq);
                    }
                }
                // A compaction in flight dies mid-sequence: the phases
                // already executed are durably on disk, the rest never
                // happen — this is the snapshot→rename→truncate crash
                // matrix. (Reopen cleans the stale tmp, not modeled.)
                if let Some((_, phase)) = w.compacting.take() {
                    ck.killed_mid_compaction.insert(phase.name());
                }
                w.home = None;
                w.retry_at = None;
                // The suspector died with its suspicions.
                w.suspected = [false; NREM];
                for (i, &kept) in keep.iter().enumerate() {
                    // Messages to the corpse are never consumed.
                    w.r2h[i].clear();
                    // The victim's in-flight sends: an arbitrary prefix
                    // survives, then the detector marker (always last).
                    w.h2r[i].truncate(kept);
                    if w.rem[i].alive {
                        w.h2r[i].push_back(Msg::Down { dead: HOME });
                    } else {
                        w.h2r[i].clear();
                    }
                }
            } else {
                let i = victim - 1;
                w.rem[i] = Remote::dead();
                w.h2r[i].clear();
                w.r2h[i].truncate(keep[0]);
                if w.home.is_some() {
                    w.r2h[i].push_back(Msg::Down { dead: victim });
                } else {
                    w.r2h[i].clear();
                }
            }
        }
        Tr::KillBoth { keep } => {
            w.kill_budget -= 2;
            ck.double_kills += 1;
            for (i, &kept) in keep.iter().enumerate() {
                w.rem[i] = Remote::dead();
                w.h2r[i].clear();
                w.r2h[i].truncate(kept);
                // Generation guards on a live home; each victim's marker
                // rides its own FIFO, so the home learns of the two deaths
                // in either delivery order.
                w.r2h[i].push_back(Msg::Down { dead: i + 1 });
            }
        }
    }
}

/// Deliver one message to remote `i` (node id `i+1`).
fn deliver_to_remote(w: &mut World, ck: &mut Ck, trace: &[String], i: usize, msg: Msg) {
    match msg {
        Msg::Fill { exclusive } => {
            let granted = if exclusive {
                LocalState::Exclusive
            } else {
                LocalState::Shared
            };
            run_cache_event(w, ck, trace, i, CacheEvent::FillDone { granted });
        }
        Msg::Grant { op } => run_cache_event(w, ck, trace, i, CacheEvent::GrantDone { op }),
        Msg::Inv => run_cache_event(w, ck, trace, i, CacheEvent::Invalidate { from: HOME }),
        Msg::RecallDirty => run_cache_event(w, ck, trace, i, CacheEvent::RecallDirty),
        Msg::Downgrade => run_cache_event(w, ck, trace, i, CacheEvent::DowngradeDirty),
        Msg::RecallOperated { op } => {
            run_cache_event(w, ck, trace, i, CacheEvent::RecallOperated { op });
        }
        Msg::LockGrant { kind } => {
            let r = &mut w.rem[i];
            if r.lock != Lock::Waiting(kind) {
                fail(
                    ck,
                    trace,
                    w,
                    &format!("r{} got a {kind:?} lock grant it never asked for", i + 1),
                );
            }
            r.lock = Lock::Holding(kind);
        }
        Msg::Down { dead } => {
            assert_eq!(dead, HOME, "only the home's death reaches a remote");
            if w.home.is_some() {
                // Restart gating requires every marker consumed first, so a
                // marker outliving the rebirth means the model is broken.
                fail(
                    ck,
                    trace,
                    w,
                    "Down marker consumed after the home restarted",
                );
            }
            ck.homedown_states.insert(w.rem[i].state.name());
            let r = &mut w.rem[i];
            r.home_down = true;
            // Lock slots waiting on (or holding locks managed by) the dead
            // home are meaningless now: the table died with the home.
            r.lock = Lock::Idle;
            run_cache_event(w, ck, trace, i, CacheEvent::HomeDown);
            // An application wait with no fill in flight will never be woken
            // by the protocol again — the runtime wakes it on the detector
            // edge so it re-checks and observes NodeUnavailable.
            if w.rem[i].app != App::Idle && !w.rem[i].state.in_flight() && w.rem[i].after.is_none()
            {
                w.rem[i].app = App::Idle;
            }
        }
        Msg::Restarted => {
            // FIFO put the old incarnation's Down marker first, so the
            // remote has already torn down its in-flight state; what's left
            // is to void rights granted by the dead incarnation and resume
            // talking to the new one.
            w.rem[i].home_down = false;
            run_cache_event(w, ck, trace, i, CacheEvent::HomeRestarted);
        }
        other => fail(
            ck,
            trace,
            w,
            &format!("remote-only message {other:?} delivered to r{}", i + 1),
        ),
    }
}

/// Deliver one message from remote `i` (node id `i+1`) to the home.
fn deliver_to_home(w: &mut World, ck: &mut Ck, trace: &[String], i: usize, msg: Msg) {
    let from = i + 1;
    if w.home.as_ref().unwrap().knows_dead[i] && !matches!(msg, Msg::Down { .. }) {
        // FIFO + marker-last makes this unreachable; if it fires the kill
        // model itself is broken.
        fail(
            ck,
            trace,
            w,
            &format!("home consumed {msg:?} from r{from} after its Down marker"),
        );
    }
    match msg {
        Msg::Req { kind } => run_home_event(
            w,
            ck,
            trace,
            HomeEvent::Request(Request {
                source: Requester::Remote {
                    node: from,
                    dst_off: 0,
                },
                kind,
            }),
        ),
        Msg::InvAck => run_home_event(w, ck, trace, HomeEvent::InvAck { from }),
        Msg::EvictNotice => run_home_event(w, ck, trace, HomeEvent::EvictNotice { from }),
        Msg::Writeback { downgrade } => {
            run_home_event(w, ck, trace, HomeEvent::Writeback { from, downgrade });
        }
        Msg::Flush { op } => run_home_event(
            w,
            ck,
            trace,
            HomeEvent::Flush {
                from,
                op,
                has_data: true,
            },
        ),
        Msg::LockAcq { kind } => {
            let h = w.home.as_mut().unwrap();
            let granted = h.locks.acquire(ELEM, kind, LockSource::Remote(from));
            if let Some(src) = granted {
                deliver_lock_grants(w, ck, trace, vec![(src, kind)]);
            }
        }
        Msg::LockRel { kind } => {
            let h = w.home.as_mut().unwrap();
            let granted = h.locks.release(ELEM, kind, Some(from));
            deliver_lock_grants(w, ck, trace, granted);
        }
        Msg::Down { dead } => {
            assert_eq!(dead, from);
            if w.rem[i].alive {
                fail(
                    ck,
                    trace,
                    w,
                    &format!("quorum confirmed the death of LIVE node {dead}"),
                );
            }
            if w.suspected[i] {
                // The home's own suspicion was resolved by the suspect's
                // actual death rather than a refutation.
                ck.suspect_confirms += 1;
                w.suspected[i] = false;
            }
            let h = w.home.as_mut().unwrap();
            ck.pd_transients.insert(h.m.transient().name());
            ck.pd_states.insert(h.m.state().name());
            h.knows_dead[i] = true;
            // Each confirmed death burns one membership epoch, in marker
            // consumption order (a double kill burns 1 then 2).
            let view_epoch = h.m.view_epoch() + 1;
            run_home_event(w, ck, trace, HomeEvent::PeerDown { dead, view_epoch });
            let h = w.home.as_mut().unwrap();
            let purge = h.locks.forget_peer(dead);
            ck.locks_reclaimed += purge.reclaimed;
            deliver_lock_grants(
                w,
                ck,
                trace,
                purge.granted.into_iter().map(|(_, s, k)| (s, k)).collect(),
            );
        }
        other => fail(
            ck,
            trace,
            w,
            &format!("home-only message {other:?} sent to the home"),
        ),
    }
}

/// Deliver lock grants returned by the table, mirroring the runtime's
/// cascade: a grant to a node already known dead is immediately released
/// back (the table re-pumps to the next waiter).
fn deliver_lock_grants(
    w: &mut World,
    ck: &mut Ck,
    trace: &[String],
    granted: Vec<(LockSource<u32>, LockKind)>,
) {
    let mut queue: VecDeque<(LockSource<u32>, LockKind)> = granted.into();
    while let Some((src, lk)) = queue.pop_front() {
        match src {
            LockSource::Local(tok) => {
                assert_eq!(tok, LOCK_TOKEN, "unknown local lock token");
                let h = w.home.as_mut().unwrap();
                if h.lock != Lock::Waiting(lk) {
                    fail(ck, trace, w, "home lock slot granted while not waiting");
                }
                h.lock = Lock::Holding(lk);
            }
            LockSource::Remote(n) => {
                let h = w.home.as_mut().unwrap();
                if h.knows_dead[n - 1] {
                    // Runtime cascade: deliver_grant sees the grantee is
                    // dead and releases straight back.
                    let more = h.locks.release(ELEM, lk, Some(n));
                    ck.locks_reclaimed += 1;
                    queue.extend(more);
                } else if w.rem[n - 1].alive {
                    w.h2r[n - 1].push_back(Msg::LockGrant { kind: lk });
                }
                // else: grantee died but the marker is still in flight; the
                // grant message is lost with the node, and the marker's
                // forget_peer sweep will reclaim the table slot.
            }
        }
    }
}

/// Feed one event to the home machine and execute its actions.
fn run_home_event(w: &mut World, ck: &mut Ck, trace: &[String], ev: HomeEvent<u32>) {
    let now = w.now;
    let grace = ck.grace;
    let actions = w.home.as_mut().unwrap().m.on_event(now, grace, ev);
    for a in actions {
        match a {
            HomeAction::ChargeDirUpdate => {}
            HomeAction::Wake(tok) => {
                assert_eq!(tok, APP_TOKEN, "unknown home wake token");
                let h = w.home.as_mut().unwrap();
                if !matches!(h.app, App::Waiting(_)) {
                    fail(ck, trace, w, "home app woken while not waiting");
                }
                h.app = App::Idle;
            }
            HomeAction::SendFill { to, exclusive, .. } => {
                send_h2r(w, ck, trace, to, Msg::Fill { exclusive });
            }
            HomeAction::SendGrant { to, op } => send_h2r(w, ck, trace, to, Msg::Grant { op }),
            HomeAction::SendInvalidate { to } => send_h2r(w, ck, trace, to, Msg::Inv),
            HomeAction::SendRecallDirty { to } => send_h2r(w, ck, trace, to, Msg::RecallDirty),
            HomeAction::SendDowngrade { to } => send_h2r(w, ck, trace, to, Msg::Downgrade),
            HomeAction::SendRecallOperated { to, op } => {
                send_h2r(w, ck, trace, to, Msg::RecallOperated { op });
            }
            HomeAction::ApplyFlushData { .. } => ck.reductions += 1,
            HomeAction::SetHomeLocal { state, tag } => {
                w.home.as_mut().unwrap().dentry = (state, tag);
            }
            HomeAction::StartHomeDrain { target, tag } => {
                let h = w.home.as_mut().unwrap();
                if h.draining {
                    fail(ck, trace, w, "overlapping home drains");
                }
                h.dentry = (target, tag);
                h.draining = true;
            }
            HomeAction::ScheduleRetry { at } => {
                if w.retry_at.is_some() {
                    fail(ck, trace, w, "two grace retries scheduled at once");
                }
                w.retry_at = Some(at);
            }
            HomeAction::Trace(_) => {}
            HomeAction::Count(c) => match c {
                Counter::EpochsAborted => ck.epochs_aborted += 1,
                Counter::SharersPruned => ck.sharers_pruned += 1,
                Counter::FlushPersists => ck.persist_acks += 1,
                _ => {}
            },
            HomeAction::PersistChunk { seq } => {
                ck.persists += 1;
                if w.pending_persist.is_some() {
                    fail(ck, trace, w, "two persists pending at once");
                }
                if !w.durable {
                    fail(ck, trace, w, "a non-durable machine emitted PersistChunk");
                }
                w.pending_persist = Some(seq);
            }
            // Migration actions cannot fire in this world (no
            // `BeginMigration` is ever injected); the elastic re-homing
            // search in the `migration` module covers them.
            HomeAction::TransferChunk { .. }
            | HomeAction::SendMigrateAck { .. }
            | HomeAction::SendMigrateCommit { .. }
            | HomeAction::DepartChunk { .. }
            | HomeAction::AdoptChunk { .. }
            | HomeAction::ForwardRequest { .. } => {
                fail(ck, trace, w, "migration action in a migration-free world")
            }
        }
    }
}

/// Send a protocol message from the home to remote node `to`. A send to a
/// node the home has already declared dead is a recovery bug — the whole
/// point of `forget_peer` is that no action ever references a corpse.
fn send_h2r(w: &mut World, ck: &mut Ck, trace: &[String], to: usize, msg: Msg) {
    if w.home.as_ref().unwrap().knows_dead[to - 1] {
        fail(
            ck,
            trace,
            w,
            &format!("home sent {msg:?} to node {to} it knows is dead"),
        );
    }
    if w.rem[to - 1].alive {
        w.h2r[to - 1].push_back(msg);
    }
    // else: the node died but the detector hasn't fired yet; the message is
    // lost in flight (prefix truncation already modeled it).
}

/// Feed one event to the cache machine of remote `i` and execute its
/// actions. Uses a worklist because some actions (line allocation, waiter
/// rechecks) synchronously produce follow-up events.
fn run_cache_event(w: &mut World, ck: &mut Ck, trace: &[String], i: usize, first: CacheEvent) {
    let mut events = VecDeque::from([first]);
    while let Some(ev) = events.pop_front() {
        let r = &w.rem[i];
        let view = CacheView {
            state: r.state,
            op_tag: r.op_tag,
            line: r.line,
            draining: r.after.is_some(),
        };
        let mut wake = false;
        for a in CacheMachine::on_event(&view, ev) {
            match a {
                CacheAction::QueueWaiter => {}
                CacheAction::WakeRequester | CacheAction::WakeAllWaiters => wake = true,
                CacheAction::BeginDrain { target, tag, after } => {
                    let r = &mut w.rem[i];
                    if r.after.is_some() {
                        fail(ck, trace, w, "overlapping drains on one dentry");
                    }
                    r.state = target;
                    r.op_tag = tag;
                    r.after = Some(after);
                }
                CacheAction::AllocLine { kind } => {
                    events.push_back(CacheEvent::LineAllocated { line: LINE, kind });
                }
                CacheAction::SetLine { line } => w.rem[i].line = line,
                CacheAction::ReleaseLine { line } => {
                    if line != LINE_NONE {
                        w.rem[i].line = LINE_NONE;
                    }
                }
                CacheAction::SetTransient { state } => w.rem[i].state = state,
                CacheAction::Promote { state, tag } => {
                    let r = &mut w.rem[i];
                    r.state = state;
                    r.op_tag = tag;
                }
                CacheAction::InitOperandBuffer { .. } => {}
                CacheAction::SendEvictNotice => send_r2h(w, ck, trace, i, Msg::EvictNotice),
                CacheAction::SendInvalidateAck { to } => {
                    assert_eq!(to, HOME);
                    send_r2h(w, ck, trace, i, Msg::InvAck);
                }
                CacheAction::SendWriteback {
                    downgrade, release, ..
                } => {
                    send_r2h(w, ck, trace, i, Msg::Writeback { downgrade });
                    if release {
                        w.rem[i].line = LINE_NONE;
                    }
                }
                CacheAction::SendFlush { op, release, .. } => {
                    send_r2h(w, ck, trace, i, Msg::Flush { op });
                    if release {
                        w.rem[i].line = LINE_NONE;
                    }
                }
                CacheAction::SendUpgrade { kind, .. } => {
                    send_r2h(w, ck, trace, i, Msg::Req { kind });
                }
                CacheAction::PrefetchHint | CacheAction::Trace(_) | CacheAction::Count(_) => {}
            }
        }
        if wake {
            recheck_app(w, i, &mut events);
        }
    }
}

/// Send a protocol message from remote `i` to the home. A send after the
/// node consumed the home's `Down` marker is a recovery bug: every cache
/// path must go local-only once the home is known dead.
fn send_r2h(w: &mut World, ck: &mut Ck, trace: &[String], i: usize, msg: Msg) {
    if w.rem[i].home_down {
        fail(
            ck,
            trace,
            w,
            &format!("r{} sent {msg:?} to a home it knows is dead", i + 1),
        );
    }
    if w.home.is_some() {
        w.r2h[i].push_back(msg);
    }
    // else: home died, marker in flight; the message is never consumed.
}

/// A wake fired on remote `i`: the parked application request re-checks its
/// rights, exactly like the runtime's retry loop. It either completes
/// (satisfied, or home dead ⇒ NodeUnavailable) or re-issues the request.
fn recheck_app(w: &mut World, i: usize, events: &mut VecDeque<CacheEvent>) {
    let r = &mut w.rem[i];
    let App::Waiting(kind) = r.app else {
        return;
    };
    if satisfied(r.state, r.op_tag, kind) || r.home_down {
        r.app = App::Idle;
    } else {
        let drain_pending = r.after.is_some();
        events.push_back(CacheEvent::Request {
            kind,
            home_down: false,
            drain_pending,
        });
    }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

/// Safety: must hold in **every** reachable state.
fn check_safety(w: &World, ck: &mut Ck, trace: &[String]) {
    // THE durability theorem (DESIGN.md §14), as a world invariant: no
    // write is ever acknowledged before its image is durably in the log.
    // Kills erase the volatile machine but never `disk_seq`, and restarts
    // recover exactly `disk_seq` — so this single check is "every write
    // acked before the kill is recovered, and only those".
    if w.acked_seq > w.disk_seq {
        fail(
            ck,
            trace,
            w,
            &format!(
                "persist-before-ack violated: acked seq {} but disk only has {}",
                w.acked_seq, w.disk_seq
            ),
        );
    }
    // Compaction lag-by-one theorem: the truncated log prefix must be
    // covered by the FALLBACK checkpoint generation, not merely the newest
    // one — so a torn `.ckpt` at any instant still recovers every dropped
    // record from `.prev` + the remaining log.
    if w.trunc_floor > w.ckpt_prev.unwrap_or(0) {
        fail(
            ck,
            trace,
            w,
            &format!(
                "compaction truncated the log past the fallback checkpoint \
                 (trunc_floor {} > prev generation {:?})",
                w.trunc_floor, w.ckpt_prev
            ),
        );
    }
    // And the full recovery theorem in every state, every phase: what a
    // reopen would reconstruct from the disk as it is RIGHT NOW — newest
    // readable checkpoint + log suffix — covers every acknowledged write.
    if w.acked_seq > recoverable(w) {
        fail(
            ck,
            trace,
            w,
            &format!(
                "acked seq {} not recoverable from ckpt {:?}/prev {:?} + log ({}, {}]",
                w.acked_seq, w.ckpt, w.ckpt_prev, w.trunc_floor, w.disk_seq
            ),
        );
    }
    if let Some(h) = &w.home {
        // The executor's pending persist and the machine's AwaitPersist
        // transient must agree exactly.
        use darray::protocol::Transient;
        let awaited = match h.m.transient() {
            Transient::AwaitPersist { seq } => Some(*seq),
            _ => None,
        };
        if awaited != w.pending_persist {
            fail(
                ck,
                trace,
                w,
                &format!(
                    "machine awaits persist {awaited:?} but executor has {:?} pending",
                    w.pending_persist
                ),
            );
        }
        // Epoch monotonicity across restarts: a new record must never be
        // stamped below the log's replay frontier, or a later replay would
        // resurrect a pre-restart image.
        if h.m.persist_seq() < w.disk_seq {
            fail(
                ck,
                trace,
                w,
                "persist sequence regressed below the durable log",
            );
        }
    }
    // The quorum guarantee, stated as a world invariant: no live peer is
    // ever declared dead. Everything destructive (lock reclaim, Dirty
    // ownership reclaim, sharer pruning) happens only behind `knows_dead`,
    // so this single check covers "no reachable interleaving discards a
    // live peer's writes".
    if let Some(h) = &w.home {
        for i in 0..NREM {
            if h.knows_dead[i] && w.rem[i].alive {
                fail(ck, trace, w, "home declared a LIVE remote dead");
            }
            if w.suspected[i] && w.rem[i].alive && w.rem[i].state == LocalState::Exclusive {
                // Coverage: the dangerous state — a live suspect holding
                // unwritten Dirty data — was actually reached.
                ck.suspected_dirty_states += 1;
            }
        }
        if h.knows_dead.iter().all(|&d| d) {
            // Coverage: the home survived a confirmed double death and its
            // directory/lock sweeps ran for both victims.
            ck.both_dead_states += 1;
        }
    }
    // A *zombie* remote consumed the home's `Down` marker (or is about to:
    // FIFO has the marker ahead of the `Restarted` announcement) and has
    // not yet learned of the rebirth. Its rights come from the dead
    // incarnation — the restarted directory neither knows nor honors them,
    // and consuming `Restarted` voids them. Pre-existing semantics: cached
    // copies of a dead home's chunks stay locally usable (graceful
    // degradation) but their post-death writes were never promised
    // durability. Zombies are therefore excluded from directory-agreement
    // checks; they cannot reach quiescence (the pending `Restarted`
    // delivery keeps the world live).
    let zombie =
        |i: usize| w.rem[i].home_down || w.h2r[i].iter().any(|m| matches!(m, Msg::Restarted));
    // Single writer: at most one alive remote holds Exclusive, and nobody
    // else holds any rights while it does.
    let excl: Vec<usize> = (0..NREM)
        .filter(|&i| w.rem[i].alive && !zombie(i) && w.rem[i].state == LocalState::Exclusive)
        .collect();
    if excl.len() > 1 {
        fail(ck, trace, w, "two alive remotes hold Exclusive");
    }
    if let Some(&e) = excl.first() {
        for (i, r) in w.rem.iter().enumerate() {
            if i != e
                && r.alive
                && !zombie(i)
                && matches!(
                    r.state,
                    LocalState::Shared | LocalState::Exclusive | LocalState::Operated
                )
            {
                fail(
                    ck,
                    trace,
                    w,
                    &format!("r{} holds rights while r{} is Exclusive", i + 1, e + 1),
                );
            }
        }
        if let Some(h) = &w.home {
            if !matches!(h.m.state(), DirState::Dirty { owner } if *owner == e + 1) {
                fail(
                    ck,
                    trace,
                    w,
                    &format!("r{} is Exclusive but directory is {:?}", e + 1, h.m.state()),
                );
            }
        }
    }
    // Operated epoch agreement: all alive Operated remotes carry one tag.
    let tags: Vec<u32> = (0..NREM)
        .filter(|&i| w.rem[i].alive && !zombie(i) && w.rem[i].state == LocalState::Operated)
        .map(|i| w.rem[i].op_tag)
        .collect();
    if tags.windows(2).any(|t| t[0] != t[1]) {
        fail(
            ck,
            trace,
            w,
            "two alive remotes Operated under different ops",
        );
    }
    // Dentry/line consistency (drains excepted: the line detaches at the
    // continuation, not at drain start).
    for (i, r) in w.rem.iter().enumerate() {
        if r.alive && r.after.is_none() && (r.state == LocalState::Invalid) != (r.line == LINE_NONE)
        {
            fail(
                ck,
                trace,
                w,
                &format!("r{} dentry/line mismatch: {:?}/{}", i + 1, r.state, r.line),
            );
        }
    }
    let Some(h) = &w.home else { return };
    // The machine's dead set and the executor's detector agree.
    for n in 1..=NREM {
        if h.m.is_dead(n) != h.knows_dead[n - 1] {
            fail(ck, trace, w, "machine dead set out of sync with detector");
        }
    }
    // No directory bookkeeping references a known-dead node.
    let dead_ref = |n: &usize| h.knows_dead[*n - 1];
    let state_refs_dead = match h.m.state() {
        DirState::Shared { sharers } | DirState::Operated { sharers, .. } => {
            sharers.iter().any(&dead_ref)
        }
        DirState::Dirty { owner } => dead_ref(owner),
        DirState::Unshared => false,
    };
    if state_refs_dead {
        fail(ck, trace, w, "directory state references a known-dead node");
    }
    use darray::protocol::Transient;
    let transient_refs_dead = match h.m.transient() {
        Transient::AwaitInvAcks { waiting } | Transient::AwaitFlushes { waiting, .. } => {
            waiting.iter().any(&dead_ref)
        }
        Transient::AwaitWriteback { from } => dead_ref(from),
        _ => false,
    };
    if transient_refs_dead {
        fail(
            ck,
            trace,
            w,
            "transient wait set references a known-dead node",
        );
    }
    // No orphaned lock holders.
    if !h.locks.holders_all_satisfy(|n| !h.knows_dead[n - 1]) {
        fail(
            ck,
            trace,
            w,
            "lock table holds a lock for a known-dead node",
        );
    }
}

/// Liveness: must hold whenever **no internal transition is enabled** (the
/// system has quiesced — nothing will ever make progress again without a
/// new external stimulus, so anything still pending is stuck forever).
fn check_quiescence(w: &World, ck: &Ck, trace: &[String]) {
    let live_holder = matches!(w.home.as_ref().map(|h| h.lock), Some(Lock::Holding(_)))
        || w.rem
            .iter()
            .any(|r| r.alive && matches!(r.lock, Lock::Holding(_)));

    if let Some(h) = &w.home {
        if !h.m.transient().is_none() {
            fail(
                ck,
                trace,
                w,
                &format!(
                    "quiescent with transient {} pending",
                    h.m.transient().name()
                ),
            );
        }
        if h.m.pending_len() != 0 || h.m.has_current() {
            fail(
                ck,
                trace,
                w,
                "quiescent with directory requests still queued",
            );
        }
        if matches!(h.app, App::Waiting(_)) {
            fail(ck, trace, w, "home app thread parked forever");
        }
        if matches!(h.lock, Lock::Waiting(_)) && !live_holder {
            fail(ck, trace, w, "home lock waiter blocked with no live holder");
        }
        // Home dentry must mirror the directory state.
        let want = (
            h.m.state().home_local(),
            match h.m.state() {
                DirState::Operated { op, .. } => op.0,
                _ => NOTAG,
            },
        );
        if h.dentry != want {
            fail(
                ck,
                trace,
                w,
                &format!(
                    "home dentry {:?} disagrees with directory (want {want:?})",
                    h.dentry
                ),
            );
        }
        // Directory ↔ survivor dentries, both directions.
        for (i, r) in w.rem.iter().enumerate() {
            let n = i + 1;
            let (in_sharers, as_owner, op_of) = match h.m.state() {
                DirState::Shared { sharers } => (sharers.contains(&n), false, None),
                DirState::Dirty { owner } => (false, *owner == n, None),
                DirState::Operated { op, sharers } => (sharers.contains(&n), false, Some(op.0)),
                DirState::Unshared => (false, false, None),
            };
            if !r.alive {
                continue;
            }
            match r.state {
                LocalState::Shared => {
                    if !(in_sharers && op_of.is_none()) {
                        fail(
                            ck,
                            trace,
                            w,
                            &format!("r{n} is Shared but directory is {:?}", h.m.state()),
                        );
                    }
                }
                LocalState::Exclusive => {
                    if !as_owner {
                        fail(
                            ck,
                            trace,
                            w,
                            &format!("r{n} is Exclusive but directory is {:?}", h.m.state()),
                        );
                    }
                }
                LocalState::Operated => {
                    if op_of != Some(r.op_tag) || !in_sharers {
                        fail(
                            ck,
                            trace,
                            w,
                            &format!(
                                "r{n} Operated({}) but directory is {:?}",
                                r.op_tag,
                                h.m.state()
                            ),
                        );
                    }
                }
                LocalState::Invalid => {
                    if in_sharers || as_owner {
                        fail(
                            ck,
                            trace,
                            w,
                            &format!("directory lists Invalid r{n}: {:?}", h.m.state()),
                        );
                    }
                }
                s => fail(
                    ck,
                    trace,
                    w,
                    &format!("r{n} stuck in transient state {s:?} at quiescence"),
                ),
            }
        }
    }
    for (i, r) in w.rem.iter().enumerate() {
        if !r.alive {
            continue;
        }
        if matches!(r.app, App::Waiting(_)) {
            fail(
                ck,
                trace,
                w,
                &format!("r{} app thread parked forever", i + 1),
            );
        }
        if matches!(r.lock, Lock::Waiting(_)) && (w.home.is_none() || !live_holder) {
            fail(
                ck,
                trace,
                w,
                &format!("r{} lock waiter blocked with no live grantor", i + 1),
            );
        }
        if w.home.is_none() && (r.state.in_flight() || r.after.is_some()) {
            fail(
                ck,
                trace,
                w,
                &format!("r{} stuck in-flight after home death", i + 1),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

fn state_key(w: &World) -> u64 {
    // The derived Debug string is a canonical encoding of the world (every
    // behavioral field is in it, in a deterministic order); hashing it keeps
    // the memo table small. DefaultHasher::new() uses fixed keys, so runs
    // are reproducible.
    let mut h = std::hash::DefaultHasher::new();
    format!("{w:?}").hash(&mut h);
    h.finish()
}

fn dfs(w: &World, depth: usize, ck: &mut Ck, trace: &mut Vec<String>) {
    if !ck.seen.insert(state_key(w)) {
        return;
    }
    if ck.seen.len() > ck.max_states {
        fail(
            ck,
            trace,
            w,
            "state-space budget exceeded (raise DARRAY_MC_MAX_STATES)",
        );
    }
    check_safety(w, ck, trace);
    let internal = internal_transitions(w);
    if internal.is_empty() {
        ck.quiescent_states += 1;
        check_quiescence(w, ck, trace);
    }
    if depth >= ck.max_depth {
        ck.depth_pruned += 1;
        return;
    }
    let mut all = internal;
    all.extend(external_transitions(w));
    for tr in all {
        let mut child = w.clone();
        trace.push(label(w, tr));
        apply(&mut child, ck, trace, tr);
        dfs(&child, depth + 1, ck, trace);
        trace.pop();
    }
}

fn initial_world(
    req: [u8; NREM],
    locks: [u8; NREM],
    evicts: [u8; NREM],
    home_req: u8,
    home_locks: u8,
    kills: u8,
    suspects: u8,
) -> World {
    World {
        home: Some(Home {
            m: HomeMachine::new(),
            locks: LockTable::default(),
            dentry: (LocalState::Exclusive, NOTAG),
            draining: false,
            knows_dead: [false; NREM],
            app: App::Idle,
            lock: Lock::Idle,
            req_budget: home_req,
            lock_budget: home_locks,
        }),
        rem: [
            Remote::fresh(req[0], locks[0], evicts[0]),
            Remote::fresh(req[1], locks[1], evicts[1]),
        ],
        h2r: [VecDeque::new(), VecDeque::new()],
        r2h: [VecDeque::new(), VecDeque::new()],
        now: 0,
        retry_at: None,
        kill_budget: kills,
        suspected: [false; NREM],
        suspect_budget: suspects,
        durable: false,
        pending_persist: None,
        disk_seq: 0,
        acked_seq: 0,
        restart_budget: 0,
        ckpt: None,
        ckpt_prev: None,
        trunc_floor: 0,
        compacting: None,
        compact_budget: 0,
    }
}

/// Durable-mode world: the home machine gates acknowledgements on the
/// modeled chunk store, and `restarts` node rebirths may be injected.
fn durable_world(mut w: World, restarts: u8) -> World {
    w.durable = true;
    w.restart_budget = restarts;
    w.home.as_mut().unwrap().m.set_durable(true);
    w
}

/// Compaction world: on top of a durable world, up to `compactions`
/// checkpoint/compaction sequences may start at any point, each walking
/// the snapshot→rotate→rename→truncate ladder with kills between phases.
fn compaction_world(mut w: World, compactions: u8) -> World {
    assert!(w.durable, "compaction requires the durable world");
    w.compact_budget = compactions;
    w
}

fn summarize(ck: &Ck, name: &str) {
    println!(
        "[{name}] states={} quiescent={} depth_pruned={} \
         pd_transients={:?} pd_states={:?} homedown_states={:?} retry_transients={:?} \
         epochs_aborted={} sharers_pruned={} locks_reclaimed={} reductions={} \
         suspect_refutes={} suspect_confirms={} suspected_dirty_states={} \
         persists={} persist_acks={} killed_mid_persist={} home_restarts={} \
         remote_restarts={} compactions={}/{} killed_mid_compaction={:?} \
         restarts_from_checkpoint={} double_kills={} both_dead_states={}",
        ck.seen.len(),
        ck.quiescent_states,
        ck.depth_pruned,
        ck.pd_transients,
        ck.pd_states,
        ck.homedown_states,
        ck.retry_transients,
        ck.epochs_aborted,
        ck.sharers_pruned,
        ck.locks_reclaimed,
        ck.reductions,
        ck.suspect_refutes,
        ck.suspect_confirms,
        ck.suspected_dirty_states,
        ck.persists,
        ck.persist_acks,
        ck.killed_mid_persist,
        ck.home_restarts,
        ck.remote_restarts,
        ck.compactions_completed,
        ck.compactions_started,
        ck.killed_mid_compaction,
        ck.restarts_from_checkpoint,
        ck.double_kills,
        ck.both_dead_states,
    );
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// The main coherence search: no grace window (every transient is reachable
/// without time passing), two remotes issuing Read/Write/Operate plus one
/// eviction, and one kill (home or remote 1) injected at every point —
/// including every surviving-prefix truncation of the victim's in-flight
/// messages. Lock traffic is checked by [`crash_model_locks`] (the two
/// subsystems only meet at the `PeerDown` sweep, so searching them
/// separately sums the state spaces instead of multiplying them).
#[test]
fn crash_model_coherence_no_grace() {
    let mut ck = Ck::new(0);
    let w = initial_world([2, 2], [0, 0], [1, 1], 2, 0, 1, 0);
    let mut trace = Vec::new();
    dfs(&w, 0, &mut ck, &mut trace);
    summarize(&ck, "coherence");

    let min_states = env_usize("DARRAY_MC_MIN_STATES", 10_000);
    assert!(
        ck.seen.len() >= min_states,
        "explored only {} states (< {min_states}); the model lost coverage",
        ck.seen.len()
    );
    // A PeerDown must have been injected into every transient phase the
    // protocol can be in (GraceWait needs grace > 0; see the other test).
    for t in [
        "None",
        "AwaitInvAcks",
        "AwaitWriteback",
        "AwaitFlushes",
        "HomeDrain",
    ] {
        assert!(
            ck.pd_transients.contains(t),
            "no kill was consumed during transient {t}: {:?}",
            ck.pd_transients
        );
    }
    assert!(
        ck.pd_states.contains("Operated"),
        "no kill landed during an Operated epoch: {:?}",
        ck.pd_states
    );
    assert!(
        ck.epochs_aborted > 0,
        "no Operated epoch was ever closed by abort"
    );
    assert!(
        ck.quiescent_states > 0,
        "the search never reached quiescence"
    );
}

/// Lock-subsystem search: both remotes and the home contend on one element
/// with reader and writer locks while one kill (home or remote 1) lands at
/// every point. Asserts orphaned locks are reclaimed and no waiter is left
/// blocked on a dead grantor or dead holder.
#[test]
fn crash_model_locks() {
    let mut ck = Ck::new(0);
    let w = initial_world([0, 0], [2, 2], [0, 0], 0, 2, 1, 0);
    let mut trace = Vec::new();
    dfs(&w, 0, &mut ck, &mut trace);
    summarize(&ck, "locks");

    assert!(
        ck.locks_reclaimed > 0,
        "no orphaned lock was ever reclaimed"
    );
    assert!(
        ck.quiescent_states > 0,
        "the search never reached quiescence"
    );
}

/// Cross-subsystem search: one remote drives coherence *and* lock traffic
/// at once with a kill, so the `PeerDown` sweep (directory cleanup followed
/// by the lock purge) is exercised with both subsystems mid-flight.
#[test]
fn crash_model_combined() {
    let mut ck = Ck::new(0);
    let w = initial_world([1, 1], [1, 1], [0, 0], 0, 1, 1, 0);
    let mut trace = Vec::new();
    dfs(&w, 0, &mut ck, &mut trace);
    summarize(&ck, "combined");

    assert!(
        ck.quiescent_states > 0,
        "the search never reached quiescence"
    );
}

/// Suspected-but-alive search (DESIGN.md §12): the home may falsely suspect
/// either live remote while coherence traffic (including Write requests
/// that put a remote in Exclusive with unwritten Dirty data) is in flight,
/// and one real kill can land at any point — including mid-suspicion, so
/// both resolutions (refute for a live suspect, the `Down` marker for a
/// dead one) interleave with every protocol phase. Safety asserts no live
/// peer is ever declared dead; quiescence asserts the directory and every
/// survivor's dentry still agree after suspect → refute → replay cycles —
/// i.e. no reachable interleaving reclaims locks or discards the Dirty
/// writes of a peer that was merely suspected.
#[test]
fn crash_model_suspected_but_alive() {
    let mut ck = Ck::new(0);
    let w = initial_world([2, 1], [0, 0], [1, 0], 1, 0, 1, 2);
    let mut trace = Vec::new();
    dfs(&w, 0, &mut ck, &mut trace);
    summarize(&ck, "suspected");

    assert!(
        ck.suspect_refutes > 0,
        "no suspicion of a live remote was ever refuted"
    );
    assert!(
        ck.suspect_confirms > 0,
        "no suspicion was ever resolved by the suspect's actual death"
    );
    assert!(
        ck.suspected_dirty_states > 0,
        "no reachable state had a live suspect holding unwritten Dirty data"
    );
    assert!(
        ck.quiescent_states > 0,
        "the search never reached quiescence"
    );
}

/// Durable kill-then-restart search (DESIGN.md §14): the home gates every
/// dirty-data acknowledgement on a modeled chunk-store persist, a kill can
/// land at any point — including mid-persist, branching on whether the
/// record reached the log — and one restart may rebirth the victim, which
/// recovers exactly the log's contents (`disk_seq`). Safety carries the
/// theorem in every reachable state: `acked_seq <= disk_seq`, i.e. every
/// write the protocol acknowledged before the kill is durably recoverable,
/// and the replay frontier never regresses (a restarted node's new records
/// always supersede the replayed ones). Quiescence additionally proves the
/// rebirthed identity serves traffic again: survivors void the old
/// incarnation's grants (`Restarted` after the `Down` marker) and re-fill
/// from the recovered image, and a restarted remote is re-admitted at a
/// bumped view epoch.
#[test]
fn crash_model_durable_restart() {
    let mut ck = Ck::new(0);
    let w = durable_world(initial_world([2, 1], [0, 0], [1, 0], 1, 0, 1, 0), 1);
    let mut trace = Vec::new();
    dfs(&w, 0, &mut ck, &mut trace);
    summarize(&ck, "durable");

    assert!(ck.persists > 0, "no flush was ever persisted");
    assert!(
        ck.persist_acks > 0,
        "no persist was ever acknowledged by the machine"
    );
    assert!(
        ck.killed_mid_persist > 0,
        "no kill ever landed while a persist was pending"
    );
    assert!(
        ck.pd_transients.contains("AwaitPersist"),
        "no remote death was consumed during AwaitPersist: {:?}",
        ck.pd_transients
    );
    assert!(ck.home_restarts > 0, "the home was never restarted");
    assert!(ck.remote_restarts > 0, "a remote was never restarted");
    assert!(
        ck.quiescent_states > 0,
        "the search never reached quiescence"
    );
}

/// Checkpoint/compaction crash-matrix search (DESIGN.md §14): on top of
/// the durable world, up to two compaction sequences may start at any
/// point, and the one kill can land *between any two phases* of the
/// snapshot→rotate→rename→truncate ladder — every crash point of
/// `LogChunkStore::checkpoint`. Safety carries three theorems in every
/// reachable state: persist-before-ack (`acked_seq <= disk_seq`),
/// lag-by-one truncation (`trunc_floor <=` the fallback generation — a
/// torn newest checkpoint never strands a truncated record), and full
/// recoverability (newest readable checkpoint + log suffix covers every
/// acknowledged write, in every phase). The restart recomputes the replay
/// frontier from the disk exactly as reopen does, so a compaction that
/// lost a window would surface as a persist-before-ack violation on the
/// next state. Two sequences are required so the second runs with a
/// populated `.prev` and a non-trivial truncation.
#[test]
fn crash_model_durable_compaction() {
    let mut ck = Ck::new(0);
    let w = compaction_world(
        durable_world(initial_world([2, 1], [0, 0], [1, 0], 1, 0, 1, 0), 1),
        2,
    );
    let mut trace = Vec::new();
    dfs(&w, 0, &mut ck, &mut trace);
    summarize(&ck, "compaction");

    assert!(ck.persists > 0, "no flush was ever persisted");
    assert!(
        ck.compactions_completed > 0,
        "no compaction sequence ever ran to completion"
    );
    for phase in ["WriteTmp", "Rotate", "Rename", "Truncate"] {
        assert!(
            ck.killed_mid_compaction.contains(phase),
            "no kill landed before compaction phase {phase}: {:?}",
            ck.killed_mid_compaction
        );
    }
    assert!(
        ck.restarts_from_checkpoint > 0,
        "no restart ever recovered through a checkpoint generation"
    );
    assert!(ck.home_restarts > 0, "the home was never restarted");
    assert!(
        ck.quiescent_states > 0,
        "the search never reached quiescence"
    );
}

/// Double-kill membership search: with a kill budget of two, the quorum
/// may confirm TWO simultaneous deaths (`KillBoth` — both remotes at once,
/// independent surviving prefixes) as well as any two sequential kills.
/// The home consumes the two Down markers in either order, burning one
/// view epoch per death, and must survive with a coherent directory: both
/// sweeps prune sharers/wait-sets/locks, no bookkeeping references either
/// corpse, and quiescence still holds. Safety's "no live peer declared
/// dead" covers the markers crossing in flight with the victims' last
/// protocol messages.
#[test]
fn crash_model_double_kill() {
    let mut ck = Ck::new(0);
    let w = initial_world([1, 1], [1, 1], [1, 0], 1, 0, 2, 0);
    let mut trace = Vec::new();
    dfs(&w, 0, &mut ck, &mut trace);
    summarize(&ck, "double-kill");

    assert!(
        ck.double_kills > 0,
        "no simultaneous double kill was injected"
    );
    assert!(
        ck.both_dead_states > 0,
        "the home never survived both remote deaths confirmed"
    );
    assert!(
        ck.locks_reclaimed > 0,
        "no orphaned lock was reclaimed across the double death"
    );
    assert!(
        ck.quiescent_states > 0,
        "the search never reached quiescence"
    );
}

/// Grace-window variant: with `grace_ns = 1` every fresh grant opens a
/// GraceWait window, so kills and retries land inside it. Smaller budgets
/// keep the (now time-carrying) state space in check.
#[test]
fn crash_model_grace_window() {
    let mut ck = Ck::new(1);
    ck.max_depth = env_usize("DARRAY_MC_MAX_DEPTH", 64);
    let w = initial_world([1, 1], [0, 0], [0, 0], 1, 0, 1, 0);
    let mut trace = Vec::new();
    dfs(&w, 0, &mut ck, &mut trace);
    summarize(&ck, "grace");

    assert!(
        ck.retry_transients.contains("GraceWait"),
        "no retry ever fired inside a grace window: {:?}",
        ck.retry_transients
    );
    assert!(
        ck.pd_transients.contains("GraceWait"),
        "no kill was consumed during GraceWait: {:?}",
        ck.pd_transients
    );
    assert!(ck.quiescent_states > 0);
}

// ===========================================================================
// Elastic re-homing search (DESIGN.md §15): join + migrate under crashes
// ===========================================================================

/// A second, self-contained world for the chunk-migration state machine.
///
/// Three nodes: the **source** home (node 0), the **target** home (node 1 —
/// a freshly joined node, so its machine starts cold exactly as
/// `Cluster::join_peer` brings it up), and one **requester** (node 2)
/// issuing Read/Write traffic against whichever home its home-map view
/// names. The search drives one `BeginMigration` through every
/// interleaving of requests, recalls, transfers, acks, commits, persists
/// and **kills of source, target, or requester** (with every surviving
/// prefix of the victim's in-flight messages), and checks the two §15
/// theorems in every reachable state:
///
/// * **single authority** — the source (alive, not departed) and the
///   target (alive, adopted) are never simultaneously authoritative;
/// * **no acked write lost** (durable mode) — every value whose persist
///   the protocol acknowledged is recoverable: it lives in a live
///   authoritative home's image, or best-epoch-wins log replay would
///   restore it. The migration fence (`mig_epoch` burned as a persist
///   sequence) is exactly what makes the target's log outrank the
///   source's here.
mod migration {
    use super::*;

    /// Node ids: source home, target home (the joiner), requester.
    const SRC: usize = 0;
    const TGT: usize = 1;
    const REQ: usize = 2;

    /// One in-flight message on a migration-world link. Data-bearing
    /// messages (`Fill`, `Writeback`, `MigData`) carry the value their
    /// one-sided RDMA WRITE lands at delivery time — RC FIFO makes the
    /// write visible exactly when the trailing notification is consumed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum MMsg {
        Req { kind: Kind },
        FwdReq { node: usize, kind: Kind },
        Fill { exclusive: bool, val: u64 },
        Inv,
        RecallDirty,
        InvAck,
        EvictNotice,
        Writeback { val: u64 },
        MigData { epoch: u64, val: u64 },
        MigAck { epoch: u64 },
        MigCommit { epoch: u64 },
        HomeMoved { new_home: usize, epoch: u64 },
        Down { dead: usize },
    }

    /// One home node of the migration world.
    #[derive(Debug, Clone)]
    struct MHome {
        m: HomeMachine<u32>,
        dentry: (LocalState, u32),
        draining: bool,
        /// `AdoptChunk` fired: this node is the chunk's authoritative home.
        adopted: bool,
        /// `DepartChunk` fired: this node is a former home.
        departed: bool,
        knows_dead: [bool; 3],
        view_epoch: u64,
    }

    impl MHome {
        fn fresh() -> Self {
            MHome {
                m: HomeMachine::new(),
                dentry: (LocalState::Invalid, NOTAG),
                draining: false,
                adopted: false,
                departed: false,
                knows_dead: [false; 3],
                view_epoch: 0,
            }
        }
    }

    #[derive(Debug, Clone)]
    struct MigWorld {
        homes: [Option<MHome>; 2],
        // The requester's minimal cache: one line, one app slot.
        r_alive: bool,
        r_state: LocalState,
        r_val: u64,
        r_dirty: bool,
        /// The requester's home-map view of the chunk (`home_on`).
        r_home: usize,
        r_home_epoch: u64,
        r_knows_dead: [bool; 2],
        r_app: App,
        /// A protocol request is outstanding: the requester's dentry is
        /// in-flight, so the runtime parks retries on the pending fill
        /// instead of issuing a duplicate request.
        r_inflight: bool,
        r_req_budget: u8,
        r_evict_budget: u8,
        /// Home images (the chunk's home slot per node).
        img: [u64; 2],
        /// Durable log per home: highest `(seq, value)` record. `(0, 0)` is
        /// the empty log (the initial image is value 0 at epoch 0).
        log: [(u64, u64); 2],
        /// A `PersistChunk` accepted but not yet completed: `(seq, value
        /// captured at emission)`.
        pending_persist: [Option<(u64, u64)>; 2],
        /// FIFO links, indexed by [from][to] over {SRC, TGT, REQ}; the
        /// diagonal is unused.
        links: [[std::collections::VecDeque<MMsg>; 3]; 3],
        /// `BeginMigration` not yet injected.
        mig_pending: bool,
        kill_budget: u8,
        durable: bool,
        /// Monotone value generator for requester writes.
        next_val: u64,
        /// Highest value whose persist the protocol acknowledged.
        acked_val: u64,
    }

    impl MigWorld {
        fn new(req_budget: u8, evict_budget: u8, kills: u8, durable: bool) -> Self {
            let mut src = MHome::fresh();
            src.dentry = (LocalState::Exclusive, NOTAG);
            let mut tgt = MHome::fresh();
            if durable {
                src.m.set_durable(true);
                tgt.m.set_durable(true);
            }
            MigWorld {
                homes: [Some(src), Some(tgt)],
                r_alive: true,
                r_state: LocalState::Invalid,
                r_val: 0,
                r_dirty: false,
                r_home: SRC,
                r_home_epoch: 0,
                r_knows_dead: [false; 2],
                r_app: App::Idle,
                r_inflight: false,
                r_req_budget: req_budget,
                r_evict_budget: evict_budget,
                img: [0, 0],
                log: [(0, 0), (0, 0)],
                pending_persist: [None, None],
                links: Default::default(),
                mig_pending: true,
                kill_budget: kills,
                durable,
                next_val: 1,
                acked_val: 0,
            }
        }

        fn alive(&self, node: usize) -> bool {
            match node {
                REQ => self.r_alive,
                h => self.homes[h].is_some(),
            }
        }
    }

    /// Coverage tallies for the migration search.
    struct MCk {
        max_depth: usize,
        max_states: usize,
        seen: HashSet<u64>,
        quiescent: usize,
        depth_pruned: usize,
        /// `(victim, survivor transient name)` at each `Down` consumption.
        kill_phases: HashSet<(&'static str, &'static str)>,
        /// Quiescent states where the migration fully committed.
        completed: usize,
        /// Quiescent states where the source re-assumed after a target death.
        aborted: usize,
        migrations_out: usize,
        migrations_in: usize,
        parked_replays: usize,
        forwards: usize,
    }

    impl MCk {
        fn new() -> Self {
            MCk {
                max_depth: env_usize("DARRAY_MC_MAX_DEPTH", 96),
                max_states: env_usize("DARRAY_MC_MAX_STATES", 5_000_000),
                seen: HashSet::new(),
                quiescent: 0,
                depth_pruned: 0,
                kill_phases: HashSet::new(),
                completed: 0,
                aborted: 0,
                migrations_out: 0,
                migrations_in: 0,
                parked_replays: 0,
                forwards: 0,
            }
        }
    }

    fn mfail(ck: &MCk, trace: &[String], w: &MigWorld, msg: &str) -> ! {
        let mut report = String::new();
        let _ = writeln!(report, "MIGRATION MODEL CHECK FAILED: {msg}");
        let _ = writeln!(report, "states explored: {}", ck.seen.len());
        let _ = writeln!(report, "counterexample trace ({} steps):", trace.len());
        for (i, step) in trace.iter().enumerate() {
            let _ = writeln!(report, "  {:3}. {step}", i + 1);
        }
        let _ = writeln!(report, "final world:\n{w:#?}");
        let path = std::env::var("DARRAY_MC_TRACE_FILE").unwrap_or_else(|_| {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/model-check-counterexample.txt"
            )
            .to_string()
        });
        let _ = std::fs::write(&path, &report);
        eprintln!("{report}");
        eprintln!("(trace written to {path})");
        panic!("migration model check failed: {msg}");
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum MTr {
        Deliver {
            from: usize,
            to: usize,
        },
        DrainHome(usize),
        PersistDone(usize),
        BeginMigration,
        AppReq(Kind),
        /// Fast-path write on an already-Exclusive requester line.
        WriteHit,
        Evict,
        Kill {
            victim: usize,
            keep: [usize; 2],
            flush_disk: bool,
        },
    }

    /// The two outgoing links of `victim`, in `keep[]` order.
    fn out_links(victim: usize) -> [(usize, usize); 2] {
        match victim {
            SRC => [(SRC, TGT), (SRC, REQ)],
            TGT => [(TGT, SRC), (TGT, REQ)],
            _ => [(REQ, SRC), (REQ, TGT)],
        }
    }

    fn m_internal(w: &MigWorld) -> Vec<MTr> {
        let mut out = Vec::new();
        for from in 0..3 {
            for to in 0..3 {
                if from != to && w.alive(to) && !w.links[from][to].is_empty() {
                    out.push(MTr::Deliver { from, to });
                }
            }
        }
        for h in 0..2 {
            if let Some(home) = &w.homes[h] {
                if home.draining {
                    out.push(MTr::DrainHome(h));
                }
                if w.pending_persist[h].is_some() {
                    out.push(MTr::PersistDone(h));
                }
            }
        }
        out
    }

    fn m_external(w: &MigWorld) -> Vec<MTr> {
        let mut out = Vec::new();
        if w.mig_pending && w.homes[SRC].is_some() {
            out.push(MTr::BeginMigration);
        }
        if w.r_alive
            && w.r_app == App::Idle
            && w.r_req_budget > 0
            && !w.r_inflight
            && !w.r_knows_dead[w.r_home]
        {
            for kind in [Kind::Read, Kind::Write] {
                if !satisfied(w.r_state, NOTAG, kind) {
                    out.push(MTr::AppReq(kind));
                }
            }
            if w.r_state == LocalState::Exclusive {
                out.push(MTr::WriteHit);
            }
        }
        if w.r_alive
            && w.r_evict_budget > 0
            && matches!(w.r_state, LocalState::Shared | LocalState::Exclusive)
        {
            out.push(MTr::Evict);
        }
        if w.kill_budget > 0 {
            for victim in 0..3 {
                if !w.alive(victim) {
                    continue;
                }
                let [l0, l1] = out_links(victim);
                for k0 in 0..=w.links[l0.0][l0.1].len() {
                    for k1 in 0..=w.links[l1.0][l1.1].len() {
                        out.push(MTr::Kill {
                            victim,
                            keep: [k0, k1],
                            flush_disk: false,
                        });
                        if victim < 2 && w.pending_persist[victim].is_some() {
                            out.push(MTr::Kill {
                                victim,
                                keep: [k0, k1],
                                flush_disk: true,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    fn m_label(w: &MigWorld, tr: MTr) -> String {
        let name = |n: usize| match n {
            SRC => "src",
            TGT => "tgt",
            _ => "req",
        };
        match tr {
            MTr::Deliver { from, to } => format!(
                "deliver {}->{}: {:?}",
                name(from),
                name(to),
                w.links[from][to].front().unwrap()
            ),
            MTr::DrainHome(h) => format!("{} home drain completes", name(h)),
            MTr::PersistDone(h) => format!(
                "{} disk completes persist {:?}",
                name(h),
                w.pending_persist[h].unwrap()
            ),
            MTr::BeginMigration => "BeginMigration(src -> tgt) injected".to_string(),
            MTr::AppReq(k) => format!("req app requests {k:?} from {}", name(w.r_home)),
            MTr::WriteHit => "req fast-path write (Exclusive hit)".to_string(),
            MTr::Evict => "eviction scan hits req".to_string(),
            MTr::Kill {
                victim,
                keep,
                flush_disk,
            } => format!(
                "KILL {} (kept prefixes {keep:?}, pending persist {})",
                name(victim),
                if flush_disk { "flushed" } else { "lost" }
            ),
        }
    }

    /// Feed one event to home `h`'s machine and execute its actions.
    fn m_run_home(w: &mut MigWorld, ck: &mut MCk, trace: &[String], h: usize, ev: HomeEvent<u32>) {
        let actions = w.homes[h].as_mut().unwrap().m.on_event(0, 0, ev);
        for a in actions {
            match a {
                HomeAction::ChargeDirUpdate | HomeAction::Trace(_) => {}
                HomeAction::Wake(_) => {
                    mfail(ck, trace, w, "home woke a local waiter (none modeled)")
                }
                HomeAction::SendFill { to, exclusive, .. } => {
                    let val = w.img[h];
                    m_send(w, ck, trace, h, to, MMsg::Fill { exclusive, val });
                }
                HomeAction::SendInvalidate { to } => m_send(w, ck, trace, h, to, MMsg::Inv),
                HomeAction::SendRecallDirty { to } => {
                    m_send(w, ck, trace, h, to, MMsg::RecallDirty)
                }
                HomeAction::SendGrant { .. }
                | HomeAction::SendDowngrade { .. }
                | HomeAction::SendRecallOperated { .. }
                | HomeAction::ApplyFlushData { .. } => mfail(
                    ck,
                    trace,
                    w,
                    "unreachable action for a Read/Write-only world",
                ),
                HomeAction::SetHomeLocal { state, tag } => {
                    w.homes[h].as_mut().unwrap().dentry = (state, tag);
                }
                HomeAction::StartHomeDrain { target, tag } => {
                    let home = w.homes[h].as_mut().unwrap();
                    if home.draining {
                        mfail(ck, trace, w, "overlapping home drains");
                    }
                    home.dentry = (target, tag);
                    home.draining = true;
                }
                HomeAction::ScheduleRetry { .. } => {
                    mfail(ck, trace, w, "grace retry scheduled with grace=0")
                }
                HomeAction::PersistChunk { seq } => {
                    if !w.durable {
                        mfail(ck, trace, w, "non-durable machine emitted PersistChunk");
                    }
                    if w.pending_persist[h].is_some() {
                        mfail(ck, trace, w, "two persists pending at once");
                    }
                    w.pending_persist[h] = Some((seq, w.img[h]));
                }
                HomeAction::TransferChunk { to, mig_epoch } => {
                    if h != SRC || to != TGT {
                        mfail(ck, trace, w, "transfer outside the modeled migration");
                    }
                    let val = w.img[SRC];
                    m_send(
                        w,
                        ck,
                        trace,
                        SRC,
                        TGT,
                        MMsg::MigData {
                            epoch: mig_epoch,
                            val,
                        },
                    );
                }
                HomeAction::SendMigrateAck { to, mig_epoch } => {
                    // §15 persist-before-ack: a durable target may only ack
                    // the hand-off once its log holds the transferred image
                    // at (or past) the fence epoch.
                    if w.durable && w.log[TGT].0 < mig_epoch {
                        mfail(
                            ck,
                            trace,
                            w,
                            "durable target acked the hand-off before logging the image",
                        );
                    }
                    m_send(w, ck, trace, h, to, MMsg::MigAck { epoch: mig_epoch });
                }
                HomeAction::SendMigrateCommit { to, mig_epoch } => {
                    m_send(w, ck, trace, h, to, MMsg::MigCommit { epoch: mig_epoch });
                }
                HomeAction::DepartChunk { to, mig_epoch } => {
                    if h != SRC || to != TGT {
                        mfail(ck, trace, w, "departure outside the modeled migration");
                    }
                    w.homes[h].as_mut().unwrap().departed = true;
                    // HomeMoved broadcast (the runtime's broadcast_home_moved).
                    if w.r_alive {
                        w.links[h][REQ].push_back(MMsg::HomeMoved {
                            new_home: TGT,
                            epoch: mig_epoch,
                        });
                    }
                }
                HomeAction::AdoptChunk { mig_epoch } => {
                    if h != TGT {
                        mfail(ck, trace, w, "adoption outside the modeled migration");
                    }
                    let home = w.homes[h].as_mut().unwrap();
                    home.adopted = true;
                    home.dentry = (LocalState::Exclusive, NOTAG);
                    if w.r_alive {
                        w.links[h][REQ].push_back(MMsg::HomeMoved {
                            new_home: TGT,
                            epoch: mig_epoch,
                        });
                    }
                }
                HomeAction::ForwardRequest { to, node, kind, .. } => {
                    ck.forwards += 1;
                    // Fire-and-forget: the former home forwards without a
                    // liveness check; a forward to a corpse is lost and the
                    // requester's timeout surfaces the unavailability.
                    if w.alive(to) {
                        w.links[h][to].push_back(MMsg::FwdReq { node, kind });
                    }
                    // HomeMoved redirect to the original requester.
                    let (new_home, epoch) = match w.homes[h].as_ref().unwrap().m.migrated_to() {
                        Some((n, e)) => (n, e),
                        None => mfail(ck, trace, w, "forward from a non-departed home"),
                    };
                    if node == REQ && w.r_alive {
                        w.links[h][REQ].push_back(MMsg::HomeMoved { new_home, epoch });
                    }
                }
                HomeAction::Count(c) => match c {
                    Counter::MigrationsOut => ck.migrations_out += 1,
                    Counter::MigrationsIn => ck.migrations_in += 1,
                    Counter::ParkedReplays => ck.parked_replays += 1,
                    _ => {}
                },
            }
        }
    }

    /// Send a directory message from home `h`. Sends to a node the home has
    /// already declared dead are recovery bugs (`forget_peer`'s contract).
    fn m_send(w: &mut MigWorld, ck: &mut MCk, trace: &[String], from: usize, to: usize, msg: MMsg) {
        if w.homes[from].as_ref().unwrap().knows_dead[to] {
            mfail(
                ck,
                trace,
                w,
                &format!("home {from} sent {msg:?} to node {to} it knows is dead"),
            );
        }
        if w.alive(to) {
            w.links[from][to].push_back(msg);
        }
        // else: lost in flight; the kill's prefix truncation modeled it.
    }

    fn m_deliver_to_home(
        w: &mut MigWorld,
        ck: &mut MCk,
        trace: &[String],
        h: usize,
        from: usize,
        msg: MMsg,
    ) {
        let ev: HomeEvent<u32> = match msg {
            MMsg::Req { kind } => HomeEvent::Request(Request {
                source: Requester::Remote {
                    node: from,
                    dst_off: 0,
                },
                kind,
            }),
            MMsg::FwdReq { node, kind } => HomeEvent::Request(Request {
                source: Requester::Remote { node, dst_off: 0 },
                kind,
            }),
            MMsg::InvAck => HomeEvent::InvAck { from },
            MMsg::EvictNotice => HomeEvent::EvictNotice { from },
            MMsg::Writeback { val } => {
                // The writeback's RDMA WRITE lands in the home image first.
                w.img[h] = val;
                HomeEvent::Writeback {
                    from,
                    downgrade: false,
                }
            }
            MMsg::MigData { epoch, val } => {
                w.img[h] = val;
                HomeEvent::MigrateData {
                    from,
                    mig_epoch: epoch,
                }
            }
            MMsg::MigAck { epoch } => HomeEvent::MigrateAck {
                from,
                mig_epoch: epoch,
            },
            MMsg::MigCommit { epoch } => HomeEvent::MigrateCommit {
                from,
                mig_epoch: epoch,
            },
            MMsg::Down { dead } => {
                let home = w.homes[h].as_mut().unwrap();
                home.knows_dead[dead] = true;
                let epoch = home.view_epoch + 1;
                home.view_epoch = epoch;
                let survivor = if h == SRC { "src" } else { "tgt" };
                let victim = match dead {
                    SRC => "src",
                    TGT => "tgt",
                    _ => "req",
                };
                let phase = home.m.transient().name();
                ck.kill_phases.insert((victim, phase));
                let _ = survivor;
                HomeEvent::PeerDown {
                    dead,
                    view_epoch: epoch,
                }
            }
            MMsg::Fill { .. } | MMsg::Inv | MMsg::RecallDirty | MMsg::HomeMoved { .. } => {
                mfail(ck, trace, w, "home received a remote-only message")
            }
        };
        m_run_home(w, ck, trace, h, ev);
    }

    fn m_deliver_to_req(w: &mut MigWorld, ck: &mut MCk, trace: &[String], from: usize, msg: MMsg) {
        match msg {
            MMsg::Fill { exclusive, val } => {
                w.r_inflight = false;
                w.r_state = if exclusive {
                    LocalState::Exclusive
                } else {
                    LocalState::Shared
                };
                w.r_val = val;
                match w.r_app {
                    App::Waiting(Kind::Write) => {
                        if exclusive {
                            w.r_val = w.next_val;
                            w.next_val += 1;
                            w.r_dirty = true;
                            w.r_app = App::Idle;
                        }
                        // else: the stale shared completion of an aborted
                        // earlier read (the runtime matches completions to
                        // wait-cells); the rights are recorded, the write
                        // keeps waiting for its exclusive fill.
                    }
                    App::Waiting(_) => w.r_app = App::Idle,
                    // A fill for a request whose app already errored out
                    // (timeout after a death): the rights are real, the
                    // completion is spurious.
                    App::Idle => {}
                }
            }
            MMsg::Inv => {
                // Mirrors CacheMachine::on_event(Invalidate): only a Shared
                // copy is invalidated and acked. Any other state means the
                // invalidate crossed with our own EvictNotice/Writeback (or
                // with a fresh grant from the chunk's NEW home after a
                // migration) — the in-flight notice satisfies the old
                // home's ack set, and an extra ack here would be stale.
                if w.r_state == LocalState::Shared {
                    w.r_state = LocalState::Invalid;
                    if w.alive(from) {
                        w.links[REQ][from].push_back(MMsg::InvAck);
                    }
                }
            }
            MMsg::RecallDirty => {
                if w.r_state == LocalState::Exclusive {
                    let val = w.r_val;
                    w.r_state = LocalState::Invalid;
                    w.r_dirty = false;
                    if w.alive(from) {
                        w.links[REQ][from].push_back(MMsg::Writeback { val });
                    }
                }
                // else: crossed with our own eviction; the in-flight
                // writeback/evict-notice satisfies the recall.
            }
            MMsg::HomeMoved { new_home, epoch } => {
                if epoch > w.r_home_epoch {
                    w.r_home = new_home;
                    w.r_home_epoch = epoch;
                }
                // The redirect names a home this node already knows is
                // dead: the runtime's retry resolves against the updated
                // map, sees the peer down, and surfaces NodeUnavailable
                // instead of re-sending into the corpse.
                if matches!(w.r_app, App::Waiting(_)) && w.r_knows_dead[w.r_home] {
                    w.r_app = App::Idle;
                }
            }
            MMsg::Down { dead } => {
                w.r_knows_dead[dead] = true;
                // A parked request may have been lost with the corpse (or
                // forwarded into it); the runtime's RPC timeout surfaces
                // the retry/unavailable path rather than hanging.
                if matches!(w.r_app, App::Waiting(_)) {
                    w.r_app = App::Idle;
                }
            }
            other => mfail(
                ck,
                trace,
                w,
                &format!("requester received a home-only message {other:?}"),
            ),
        }
    }

    fn m_apply(w: &mut MigWorld, ck: &mut MCk, trace: &[String], tr: MTr) {
        match tr {
            MTr::Deliver { from, to } => {
                let msg = w.links[from][to].pop_front().unwrap();
                if to == REQ {
                    m_deliver_to_req(w, ck, trace, from, msg);
                } else {
                    m_deliver_to_home(w, ck, trace, to, from, msg);
                }
            }
            MTr::DrainHome(h) => {
                w.homes[h].as_mut().unwrap().draining = false;
                m_run_home(w, ck, trace, h, HomeEvent::Drained);
            }
            MTr::PersistDone(h) => {
                let (seq, val) = w.pending_persist[h].take().unwrap();
                if seq > w.log[h].0 {
                    w.log[h] = (seq, val);
                }
                // Record the acknowledgement for the no-lost-write theorem
                // *before* the protocol resumes, mirroring the machine's
                // own completion checks.
                let awaited = match w.homes[h].as_ref().unwrap().m.transient() {
                    darray::protocol::Transient::AwaitPersist { seq: s } => seq >= *s,
                    darray::protocol::Transient::MigratingIn {
                        mig_epoch,
                        phase: darray::protocol::MigInPhase::Persist,
                        ..
                    } => seq >= *mig_epoch,
                    _ => false,
                };
                if awaited {
                    w.acked_val = w.acked_val.max(val);
                }
                m_run_home(w, ck, trace, h, HomeEvent::PersistDone { seq });
            }
            MTr::BeginMigration => {
                w.mig_pending = false;
                m_run_home(w, ck, trace, SRC, HomeEvent::BeginMigration { to: TGT });
            }
            MTr::AppReq(kind) => {
                w.r_app = App::Waiting(kind);
                w.r_req_budget -= 1;
                w.r_inflight = true;
                let home = w.r_home;
                if w.alive(home) {
                    w.links[REQ][home].push_back(MMsg::Req { kind });
                }
            }
            MTr::WriteHit => {
                w.r_req_budget -= 1;
                w.r_val = w.next_val;
                w.next_val += 1;
                w.r_dirty = true;
            }
            MTr::Evict => {
                w.r_evict_budget -= 1;
                let val = w.r_val;
                let state = w.r_state;
                w.r_state = LocalState::Invalid;
                w.r_dirty = false;
                // Evict notices go to the node the requester believes is
                // home; a migration recall crossing with this is exactly
                // the race the protocol must absorb. An Exclusive line is
                // the directory's Dirty owner whether or not it was
                // actually written, so its eviction is always a writeback.
                let home = w.r_home;
                if w.alive(home) {
                    if state == LocalState::Exclusive {
                        w.links[REQ][home].push_back(MMsg::Writeback { val });
                    } else {
                        w.links[REQ][home].push_back(MMsg::EvictNotice);
                    }
                }
            }
            MTr::Kill {
                victim,
                keep,
                flush_disk,
            } => {
                w.kill_budget -= 1;
                if victim < 2 {
                    if let Some((seq, val)) = w.pending_persist[victim].take() {
                        if flush_disk && seq > w.log[victim].0 {
                            w.log[victim] = (seq, val);
                        }
                    }
                    w.homes[victim] = None;
                } else {
                    w.r_alive = false;
                    w.r_state = LocalState::Invalid;
                    w.r_dirty = false;
                    w.r_app = App::Idle;
                    w.r_inflight = false;
                    w.r_req_budget = 0;
                    w.r_evict_budget = 0;
                }
                // Inbound links to the corpse are never consumed.
                for from in 0..3 {
                    if from != victim {
                        w.links[from][victim].clear();
                    }
                }
                // Outgoing links: an arbitrary prefix survives, then the
                // quorum-confirmed Down marker (always last, FIFO).
                for (i, (from, to)) in out_links(victim).into_iter().enumerate() {
                    w.links[from][to].truncate(keep[i]);
                    if w.alive(to) {
                        w.links[from][to].push_back(MMsg::Down { dead: victim });
                    } else {
                        w.links[from][to].clear();
                    }
                }
            }
        }
    }

    /// §15 safety, checked in every reachable state.
    fn m_check_safety(w: &MigWorld, ck: &mut MCk, trace: &[String]) {
        let src_auth = w.homes[SRC]
            .as_ref()
            .is_some_and(|h| h.m.migrated_to().is_none() && !h.departed);
        let tgt_auth = w.homes[TGT].as_ref().is_some_and(|h| h.adopted);
        if src_auth && tgt_auth {
            mfail(ck, trace, w, "two homes simultaneously authoritative");
        }
        // Executor/machine agreement on departure.
        if let Some(h) = &w.homes[SRC] {
            if h.departed != h.m.migrated_to().is_some() {
                mfail(ck, trace, w, "departed flag out of sync with migrated_to");
            }
        }
        // No acked write lost (durable): the newest acknowledged value is
        // recoverable — in a live authoritative home's image, or in the
        // log record best-epoch-wins replay would pick.
        if w.durable {
            let recoverable = if src_auth {
                w.img[SRC]
            } else if tgt_auth {
                w.img[TGT]
            } else if w.log[TGT].0 >= w.log[SRC].0 {
                w.log[TGT].1
            } else {
                w.log[SRC].1
            };
            if recoverable < w.acked_val {
                mfail(
                    ck,
                    trace,
                    w,
                    &format!(
                        "acked write lost: acked value {} but only {recoverable} recoverable",
                        w.acked_val
                    ),
                );
            }
        }
    }

    /// Liveness at quiescence: nothing parked forever.
    fn m_check_quiescence(w: &MigWorld, ck: &mut MCk, trace: &[String]) {
        if w.r_alive && matches!(w.r_app, App::Waiting(_)) {
            mfail(ck, trace, w, "requester app parked forever at quiescence");
        }
        for h in 0..2 {
            if let Some(home) = &w.homes[h] {
                if !home.m.transient().is_none() {
                    mfail(
                        ck,
                        trace,
                        w,
                        &format!("home {h} transient pending at quiescence"),
                    );
                }
                if home.m.pending_len() != 0 {
                    mfail(
                        ck,
                        trace,
                        w,
                        &format!("home {h} still holds parked requests at quiescence"),
                    );
                }
            }
        }
        let departed = w.homes[SRC].as_ref().is_some_and(|h| h.departed);
        let adopted = w.homes[TGT].as_ref().is_some_and(|h| h.adopted);
        if departed && adopted {
            ck.completed += 1;
        }
        // A target death must leave the source authoritative again.
        if w.homes[TGT].is_none() && !w.mig_pending {
            if let Some(src) = &w.homes[SRC] {
                if src.m.migrated_to().is_none() {
                    ck.aborted += 1;
                }
            }
        }
    }

    fn m_state_key(w: &MigWorld) -> u64 {
        let mut h = std::hash::DefaultHasher::new();
        format!("{w:?}").hash(&mut h);
        h.finish()
    }

    fn m_dfs(w: &MigWorld, depth: usize, ck: &mut MCk, trace: &mut Vec<String>) {
        if !ck.seen.insert(m_state_key(w)) {
            return;
        }
        if ck.seen.len() > ck.max_states {
            mfail(
                ck,
                trace,
                w,
                "state-space budget exceeded (raise DARRAY_MC_MAX_STATES)",
            );
        }
        m_check_safety(w, ck, trace);
        let internal = m_internal(w);
        if internal.is_empty() {
            ck.quiescent += 1;
            m_check_quiescence(w, ck, trace);
        }
        if depth >= ck.max_depth {
            ck.depth_pruned += 1;
            return;
        }
        let mut all = internal;
        all.extend(m_external(w));
        for tr in all {
            let mut child = w.clone();
            trace.push(m_label(w, tr));
            m_apply(&mut child, ck, trace, tr);
            m_dfs(&child, depth + 1, ck, trace);
            trace.pop();
        }
    }

    fn m_summarize(ck: &MCk, name: &str) {
        println!(
            "[{name}] states={} quiescent={} depth_pruned={} completed={} aborted={} \
             migrations_out={} migrations_in={} parked_replays={} forwards={} kill_phases={:?}",
            ck.seen.len(),
            ck.quiescent,
            ck.depth_pruned,
            ck.completed,
            ck.aborted,
            ck.migrations_out,
            ck.migrations_in,
            ck.parked_replays,
            ck.forwards,
            ck.kill_phases,
        );
    }

    /// Non-durable search: one migration, a requester issuing two
    /// Read/Write requests plus one eviction, and one kill of source,
    /// target, or requester injected at every point (with every surviving
    /// message prefix). Proves single authority in every reachable state
    /// and covers kills in every non-persist migration phase.
    #[test]
    fn migration_model_single_authority() {
        let mut ck = MCk::new();
        let w = MigWorld::new(2, 1, 1, false);
        let mut trace = Vec::new();
        m_dfs(&w, 0, &mut ck, &mut trace);
        m_summarize(&ck, "migration");

        assert!(ck.completed > 0, "no interleaving committed the migration");
        assert!(ck.aborted > 0, "no target death was ever absorbed by abort");
        assert!(ck.migrations_out > 0 && ck.migrations_in > 0);
        assert!(
            ck.parked_replays > 0,
            "no request was ever parked behind the fence and replayed"
        );
        assert!(ck.forwards > 0, "no stale-home request was ever forwarded");
        // Kills must land in every migration phase of the survivor that
        // observes them: the source sees target/requester deaths in every
        // outbound phase, the target sees source deaths while awaiting the
        // commit.
        for phase in [
            "MigratingOut:Recall",
            "MigratingOut:Drain",
            "MigratingOut:AwaitAck",
        ] {
            assert!(
                ck.kill_phases.contains(&("tgt", phase)),
                "no target kill consumed during {phase}: {:?}",
                ck.kill_phases
            );
        }
        assert!(
            ck.kill_phases.contains(&("req", "MigratingOut:Recall")),
            "no requester kill consumed during the migration recall: {:?}",
            ck.kill_phases
        );
        assert!(
            ck.kill_phases.contains(&("src", "MigratingIn:AwaitCommit")),
            "no source kill consumed while the target awaited the commit: {:?}",
            ck.kill_phases
        );
        let min_states = env_usize("DARRAY_MC_MIN_STATES", 2_000);
        assert!(
            ck.seen.len() >= min_states,
            "explored only {} states (< {min_states}); the model lost coverage",
            ck.seen.len()
        );
    }

    /// Durable search: the same migration with both logs live, proving the
    /// no-acked-write-lost theorem (best-epoch-wins recovery always holds
    /// the newest acknowledged value) and covering source kills during the
    /// target's persist phase.
    #[test]
    fn migration_model_durable_no_lost_write() {
        let mut ck = MCk::new();
        let w = MigWorld::new(2, 1, 1, true);
        let mut trace = Vec::new();
        m_dfs(&w, 0, &mut ck, &mut trace);
        m_summarize(&ck, "migration-durable");

        assert!(ck.completed > 0, "no interleaving committed the migration");
        assert!(
            ck.kill_phases.contains(&("src", "MigratingIn:Persist")),
            "no source kill consumed during the target's adopt-persist: {:?}",
            ck.kill_phases
        );
        assert!(
            ck.kill_phases.contains(&("src", "MigratingIn:AwaitCommit")),
            "no source kill consumed while the target awaited the commit: {:?}",
            ck.kill_phases
        );
        for phase in [
            "MigratingOut:Recall",
            "MigratingOut:Drain",
            "MigratingOut:AwaitAck",
        ] {
            assert!(
                ck.kill_phases.contains(&("tgt", phase)),
                "no target kill consumed during {phase}: {:?}",
                ck.kill_phases
            );
        }
    }
}
