//! Property-based tests: the coherence protocol against a sequential
//! reference model under randomized multi-node operation sequences, and
//! structural properties of the layout.

use darray::{ArrayOptions, Cluster, ClusterConfig, Layout, Sim, SimConfig};
use proptest::prelude::*;

/// One logical operation a node performs on the array.
#[derive(Debug, Clone)]
enum Op {
    /// `set(index, value)` — restricted to indices owned by this writer
    /// (index % 3 == 0 and writer chosen by index), so the final value is
    /// predictable.
    Set(usize, u64),
    /// `apply(index, add, value)` — index % 3 == 1.
    Add(usize, u64),
    /// `apply(index, min, value)` — index % 3 == 2.
    Min(usize, u64),
}

fn op_strategy(len: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..len / 3), any::<u64>()).prop_map(|(i, v)| Op::Set(i * 3, v)),
        ((0..len / 3), 0u64..1000).prop_map(|(i, v)| Op::Add(i * 3 + 1, v)),
        ((0..len / 3), any::<u64>()).prop_map(|(i, v)| Op::Min(i * 3 + 2, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Every element's final value matches a sequential reference model:
    /// last-write for set-elements (single writer), sum for add-elements,
    /// min for min-elements — regardless of interleaving, caching,
    /// eviction, or recall timing.
    #[test]
    fn protocol_matches_reference_model(
        nodes in 2usize..5,
        per_node_ops in proptest::collection::vec(
            proptest::collection::vec(op_strategy(6 * 512), 1..120),
            4,
        ),
        tiny_cache in proptest::bool::ANY,
    ) {
        let len = 6 * 512;
        let init = 1_000_000u64;
        // Sequential reference: set-elements take the last write *of their
        // single writer*; writers are per-index `index % nodes`, so filter
        // each node's sets to its own indices.
        let mut expected: Vec<u64> = vec![init; len];
        let mut adds: Vec<u64> = vec![0; len];
        let mut mins: Vec<u64> = vec![u64::MAX; len];
        for (n, ops) in per_node_ops.iter().enumerate().take(nodes) {
            for op in ops {
                match *op {
                    Op::Set(i, v) => {
                        if i % nodes == n {
                            expected[i] = v; // last write of the sole writer
                        }
                    }
                    Op::Add(i, v) => adds[i] = adds[i].wrapping_add(v),
                    Op::Min(i, v) => mins[i] = mins[i].min(v),
                }
            }
        }
        for i in 0..len {
            match i % 3 {
                1 => expected[i] = init.wrapping_add(adds[i]),
                2 => expected[i] = expected[i].min(mins[i]),
                _ => {}
            }
        }

        let mut cfg = ClusterConfig::test_config(nodes);
        if tiny_cache {
            cfg.cache.capacity_lines = 4;
            cfg.cache.prefetch_lines = 0;
        }
        let ops_arc = std::sync::Arc::new(per_node_ops);
        let expected_arc = std::sync::Arc::new(expected);
        Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, cfg);
            let add = cluster.ops().register_add_u64();
            let min = cluster.ops().register_min_u64();
            let arr = cluster.alloc_with::<u64>(len, ArrayOptions::default(), |_| init);
            let ops2 = ops_arc.clone();
            let exp2 = expected_arc.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                for op in &ops2[env.node] {
                    match *op {
                        Op::Set(i, v) => {
                            if i % env.nodes == env.node {
                                a.set(ctx, i, v);
                            }
                        }
                        Op::Add(i, v) => a.apply(ctx, i, add, v),
                        Op::Min(i, v) => a.apply(ctx, i, min, v),
                    }
                }
                env.barrier(ctx);
                if env.node == 0 {
                    for i in 0..a.len() {
                        let got = a.get(ctx, i);
                        assert_eq!(got, exp2[i], "element {i} diverged");
                    }
                }
            });
            cluster.shutdown(ctx);
        });
    }

    /// Layout invariants: every chunk has exactly one home; node element
    /// ranges tile the array; home offsets stay within subarrays.
    #[test]
    fn layout_partitions_are_consistent(
        len in 1usize..100_000,
        nodes in 1usize..13,
        chunk_pow in 4u32..10,
    ) {
        let chunk = 1usize << chunk_pow;
        let l = Layout::even(len, nodes, chunk);
        let mut covered = 0;
        for n in 0..nodes {
            let r = l.node_elems(n);
            covered += r.len();
            for c in l.node_chunks(n) {
                prop_assert_eq!(l.home_of_chunk(c), n);
                let off = l.chunk_home_offset(c);
                prop_assert!(off + l.chunk_size() <= l.subarray_words(n));
            }
        }
        prop_assert_eq!(covered, len);
        // Element-level homes agree with chunk-level homes.
        for i in [0, len / 2, len - 1] {
            let h = l.home_of(i);
            prop_assert!(l.node_elems(h).contains(&i));
        }
    }

    /// Multi-threaded nodes: two app threads per node race on the same
    /// dentries (refcnt contention, shared waiter lists). Threads of one
    /// node split its op list; the same reference model applies.
    #[test]
    fn protocol_matches_reference_model_multithreaded(
        nodes in 2usize..4,
        per_node_ops in proptest::collection::vec(
            proptest::collection::vec(op_strategy(4 * 512), 2..80),
            3,
        ),
    ) {
        let len = 4 * 512;
        let init = 77u64;
        let mut expected: Vec<u64> = vec![init; len];
        let mut adds: Vec<u64> = vec![0; len];
        let mut mins: Vec<u64> = vec![u64::MAX; len];
        for (n, ops) in per_node_ops.iter().enumerate().take(nodes) {
            for op in ops {
                match *op {
                    Op::Set(i, v) => {
                        if i % nodes == n {
                            expected[i] = v;
                        }
                    }
                    Op::Add(i, v) => adds[i] = adds[i].wrapping_add(v),
                    Op::Min(i, v) => mins[i] = mins[i].min(v),
                }
            }
        }
        for i in 0..len {
            match i % 3 {
                1 => expected[i] = init.wrapping_add(adds[i]),
                2 => expected[i] = expected[i].min(mins[i]),
                _ => {}
            }
        }
        let ops_arc = std::sync::Arc::new(per_node_ops);
        let expected_arc = std::sync::Arc::new(expected);
        Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(nodes));
            let add = cluster.ops().register_add_u64();
            let min = cluster.ops().register_min_u64();
            let arr = cluster.alloc_with::<u64>(len, ArrayOptions::default(), |_| init);
            let ops2 = ops_arc.clone();
            let exp2 = expected_arc.clone();
            cluster.run(ctx, 2, move |ctx, env| {
                let a = arr.on(env.node);
                // Thread 0 takes even-indexed ops, thread 1 odd-indexed.
                // Sets remain single-writer because set-elements are
                // writer-partitioned by node AND each (node, element) set
                // sequence stays within one interleaved subsequence...
                // To keep last-write semantics exact, thread-split by
                // element parity instead: a set/add/min on element i is
                // executed by thread (i / 3) % 2.
                for op in &ops2[env.node] {
                    let i = match *op {
                        Op::Set(i, _) | Op::Add(i, _) | Op::Min(i, _) => i,
                    };
                    if (i / 3) % 2 != env.thread {
                        continue;
                    }
                    match *op {
                        Op::Set(i, v) => {
                            if i % env.nodes == env.node {
                                a.set(ctx, i, v);
                            }
                        }
                        Op::Add(i, v) => a.apply(ctx, i, add, v),
                        Op::Min(i, v) => a.apply(ctx, i, min, v),
                    }
                }
                env.barrier(ctx);
                if env.node == 0 && env.thread == 0 {
                    for i in 0..a.len() {
                        let got = a.get(ctx, i);
                        assert_eq!(got, exp2[i], "element {i} diverged");
                    }
                }
            });
            cluster.shutdown(ctx);
        });
    }

    /// Custom partitions: arbitrary non-decreasing offsets still produce a
    /// consistent, total chunk assignment.
    #[test]
    fn custom_layout_is_total(
        len in 512usize..50_000,
        raw in proptest::collection::vec(0usize..50_000, 1..8),
    ) {
        let mut offs = raw;
        offs.sort_unstable();
        offs[0] = 0;
        let offs: Vec<usize> = offs.into_iter().map(|o| o.min(len)).collect();
        let nodes = offs.len();
        let l = Layout::custom(len, nodes, 512, &offs);
        let mut covered = 0;
        for n in 0..nodes {
            covered += l.node_chunks(n).len();
        }
        prop_assert_eq!(covered, l.num_chunks());
        for c in 0..l.num_chunks() {
            let h = l.home_of_chunk(c);
            prop_assert!(l.node_chunks(h).contains(&c));
        }
    }
}
