//! The store itself: bucketized entry array + slab-managed byte array
//! (§5.2, Figure 11).

use std::sync::Arc;

use darray::{Ctx, Layout, DEFAULT_CHUNK_SIZE};
use parking_lot::Mutex;

use crate::backend::KvBackend;
use crate::entry::Entry;
use crate::hash::{bucket_of, tag_of};
use crate::slab::SlabAllocator;

/// Slots per bucket: 15 entries plus the overflow pointer.
pub const BUCKET_SLOTS: usize = 16;
/// Entry slots usable for keys in each bucket.
pub const BUCKET_ENTRIES: usize = 15;

/// Store sizing.
#[derive(Debug, Clone)]
pub struct KvsConfig {
    /// Main hash buckets.
    pub buckets: u64,
    /// Overflow buckets reserved per node (chained when buckets fill up).
    pub overflow_per_node: u64,
    /// Total byte-array capacity in bytes (values live here).
    pub value_capacity: u64,
    /// Number of nodes.
    pub nodes: usize,
}

impl KvsConfig {
    /// Length (in `u64` elements) of the entry array this config needs.
    pub fn entry_array_len(&self) -> usize {
        ((self.buckets + self.overflow_per_node * self.nodes as u64) * BUCKET_SLOTS as u64) as usize
    }

    /// Length (in `u64` words) of the byte array this config needs.
    pub fn byte_array_words(&self) -> usize {
        (self.value_capacity / 8) as usize
    }
}

/// Store errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvsError {
    /// The pair exceeds the largest slab class or the 16-bit size field.
    TooLarge,
    /// This node's byte-array partition or overflow-bucket budget is
    /// exhausted.
    Full,
}

/// Cluster-global store state: per-node slab allocators and overflow-bucket
/// counters. Allocate the two arrays yourself (sizes from [`KvsConfig`]),
/// then derive per-node [`KvsView`]s.
pub struct Kvs {
    cfg: Arc<KvsConfig>,
    slabs: Arc<Vec<Mutex<SlabAllocator>>>,
    ovf_next: Arc<Vec<Mutex<u64>>>,
}

impl Clone for Kvs {
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg.clone(),
            slabs: self.slabs.clone(),
            ovf_next: self.ovf_next.clone(),
        }
    }
}

impl Kvs {
    /// Build the global store state. The byte array is assumed to use the
    /// default even, chunk-aligned partition (which both backends use), so
    /// each node's slab manages exactly its local bytes — values are
    /// written node-locally and read remotely.
    pub fn new(cfg: KvsConfig) -> Self {
        let words = cfg.byte_array_words();
        let layout = Layout::even(words, cfg.nodes, DEFAULT_CHUNK_SIZE);
        let slabs = (0..cfg.nodes)
            .map(|n| {
                let r = layout.node_elems(n);
                Mutex::new(SlabAllocator::new(r.start as u64 * 8, r.end as u64 * 8))
            })
            .collect();
        let ovf_next = (0..cfg.nodes).map(|_| Mutex::new(0)).collect();
        Self {
            cfg: Arc::new(cfg),
            slabs: Arc::new(slabs),
            ovf_next: Arc::new(ovf_next),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &KvsConfig {
        &self.cfg
    }

    /// Bind a node's view over its backend arrays.
    pub fn view<B: KvBackend>(&self, node: usize, entries: B, bytes: B) -> KvsView<B> {
        assert_eq!(entries.len(), self.cfg.entry_array_len());
        assert_eq!(bytes.len(), self.cfg.byte_array_words());
        KvsView {
            kvs: self.clone(),
            node,
            entries,
            bytes,
        }
    }
}

/// A node-local handle to the store.
pub struct KvsView<B: KvBackend> {
    kvs: Kvs,
    node: usize,
    entries: B,
    bytes: B,
}

impl<B: KvBackend> Clone for KvsView<B> {
    fn clone(&self) -> Self {
        Self {
            kvs: self.kvs.clone(),
            node: self.node,
            entries: self.entries.clone(),
            bytes: self.bytes.clone(),
        }
    }
}

/// Bytes a pair occupies: an 8-byte header (key/value lengths) plus the
/// word-padded key and value.
fn pair_bytes(key: &[u8], val: &[u8]) -> usize {
    8 + key.len().div_ceil(8) * 8 + val.len().div_ceil(8) * 8
}

impl<B: KvBackend> KvsView<B> {
    fn base_of(&self, chain_pos: u64) -> usize {
        (chain_pos * BUCKET_SLOTS as u64) as usize
    }

    /// Read the pair at `entry` and return its value if the key matches
    /// (Figure 11's probe body).
    fn read_pair_if_match(&self, ctx: &mut Ctx, e: Entry, key: &[u8]) -> Option<Vec<u8>> {
        let base_word = (e.offset() / 8) as usize;
        let header = self.bytes.get(ctx, base_word);
        let key_len = (header & 0xFFFF_FFFF) as usize;
        let val_len = (header >> 32) as usize;
        if key_len != key.len() {
            return None;
        }
        let key_words = key_len.div_ceil(8);
        // Compare the key.
        for w in 0..key_words {
            let word = self.bytes.get(ctx, base_word + 1 + w);
            let bytes = word.to_le_bytes();
            let lo = w * 8;
            let hi = (lo + 8).min(key_len);
            if bytes[..hi - lo] != key[lo..hi] {
                return None;
            }
        }
        // Read the value.
        let val_words = val_len.div_ceil(8);
        let mut out = Vec::with_capacity(val_len);
        for w in 0..val_words {
            let word = self.bytes.get(ctx, base_word + 1 + key_words + w);
            let bytes = word.to_le_bytes();
            let lo = w * 8;
            let hi = (lo + 8).min(val_len);
            out.extend_from_slice(&bytes[..hi - lo]);
        }
        Some(out)
    }

    /// Retrieve a key's value (Figure 11): hash to a bucket, probe its 15
    /// entries by tag, follow the overflow pointer if needed.
    pub fn get(&self, ctx: &mut Ctx, key: &[u8]) -> Option<Vec<u8>> {
        let cfg = &self.kvs.cfg;
        let tag = tag_of(key);
        let mut chain = bucket_of(key, cfg.buckets);
        loop {
            let base = self.base_of(chain);
            for slot in 0..BUCKET_ENTRIES {
                let e = Entry(self.entries.get(ctx, base + slot));
                if !e.is_empty() && e.tag() == tag {
                    if let Some(v) = self.read_pair_if_match(ctx, e, key) {
                        return Some(v);
                    }
                }
            }
            let ovf = self.entries.get(ctx, base + BUCKET_ENTRIES);
            if ovf == 0 {
                return None;
            }
            chain = cfg.buckets + (ovf - 1);
        }
    }

    /// Write the pair's bytes into freshly allocated slab space on this
    /// node and return (offset, occupied size).
    fn write_pair(&self, ctx: &mut Ctx, key: &[u8], val: &[u8]) -> Result<(u64, usize), KvsError> {
        let size = pair_bytes(key, val);
        if size > u16::MAX as usize {
            return Err(KvsError::TooLarge);
        }
        let off = {
            let mut slab = self.kvs.slabs[self.node].lock();
            slab.alloc(size).ok_or(KvsError::Full)?
        };
        let base_word = (off / 8) as usize;
        let header = key.len() as u64 | ((val.len() as u64) << 32);
        self.bytes.set(ctx, base_word, header);
        let mut w = base_word + 1;
        for part in [key, val] {
            for chunk in part.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                self.bytes.set(ctx, w, u64::from_le_bytes(word));
                w += 1;
            }
        }
        Ok((off, size))
    }

    /// Insert or update a key under the bucket's distributed writer lock.
    pub fn put(&self, ctx: &mut Ctx, key: &[u8], val: &[u8]) -> Result<(), KvsError> {
        let cfg = self.kvs.cfg.clone();
        let tag = tag_of(key);
        let head = bucket_of(key, cfg.buckets);
        let lock_idx = self.base_of(head);
        self.entries.wlock(ctx, lock_idx);
        let r = self.put_locked(ctx, &cfg, tag, head, key, val);
        self.entries.unlock(ctx, lock_idx);
        r
    }

    fn put_locked(
        &self,
        ctx: &mut Ctx,
        cfg: &KvsConfig,
        tag: u8,
        head: u64,
        key: &[u8],
        val: &[u8],
    ) -> Result<(), KvsError> {
        // Probe the chain for an existing entry or the first empty slot.
        let mut chain = head;
        let mut empty_slot: Option<usize> = None;
        let mut existing: Option<(usize, Entry)> = None;
        let last_base;
        loop {
            let base = self.base_of(chain);
            for slot in 0..BUCKET_ENTRIES {
                let e = Entry(self.entries.get(ctx, base + slot));
                if e.is_empty() {
                    if empty_slot.is_none() {
                        empty_slot = Some(base + slot);
                    }
                } else if e.tag() == tag && self.read_pair_if_match(ctx, e, key).is_some() {
                    existing = Some((base + slot, e));
                    break;
                }
            }
            if existing.is_some() {
                last_base = base;
                break;
            }
            let ovf = self.entries.get(ctx, base + BUCKET_ENTRIES);
            if ovf == 0 {
                last_base = base;
                break;
            }
            chain = cfg.buckets + (ovf - 1);
        }

        // Write the new pair first (readers racing with us keep seeing the
        // old pair until the entry word is swapped).
        let (off, size) = self.write_pair(ctx, key, val)?;
        let new_entry = Entry::pack(tag, size as u16, off);

        let slot_idx = if let Some((idx, old)) = existing {
            self.entries.set(ctx, idx, new_entry.0);
            // Reclaim the old pair's space (it lives on the node that
            // allocated it; slab metadata is per-node).
            let owner = self.owner_of_offset(old.offset());
            self.kvs.slabs[owner]
                .lock()
                .free(old.offset(), old.size() as usize);
            idx
        } else if let Some(idx) = empty_slot {
            self.entries.set(ctx, idx, new_entry.0);
            idx
        } else {
            // Chain a fresh overflow bucket from this node's budget.
            let id = {
                let mut next = self.kvs.ovf_next[self.node].lock();
                if *next >= cfg.overflow_per_node {
                    // Undo the pair allocation.
                    self.kvs.slabs[self.node].lock().free(off, size);
                    return Err(KvsError::Full);
                }
                let id = self.node as u64 * cfg.overflow_per_node + *next;
                *next += 1;
                id
            };
            let new_base = self.base_of(cfg.buckets + id);
            let idx = new_base;
            self.entries.set(ctx, idx, new_entry.0);
            self.entries.set(ctx, last_base + BUCKET_ENTRIES, id + 1);
            idx
        };
        let _ = slot_idx;
        Ok(())
    }

    /// Remove a key; returns true if it was present. (An extension beyond
    /// the paper's Figure 11, for API completeness.)
    pub fn delete(&self, ctx: &mut Ctx, key: &[u8]) -> bool {
        let cfg = self.kvs.cfg.clone();
        let tag = tag_of(key);
        let head = bucket_of(key, cfg.buckets);
        let lock_idx = self.base_of(head);
        self.entries.wlock(ctx, lock_idx);
        let mut chain = head;
        let mut found = false;
        'outer: loop {
            let base = self.base_of(chain);
            for slot in 0..BUCKET_ENTRIES {
                let e = Entry(self.entries.get(ctx, base + slot));
                if !e.is_empty() && e.tag() == tag && self.read_pair_if_match(ctx, e, key).is_some()
                {
                    self.entries.set(ctx, base + slot, Entry::EMPTY.0);
                    let owner = self.owner_of_offset(e.offset());
                    self.kvs.slabs[owner]
                        .lock()
                        .free(e.offset(), e.size() as usize);
                    found = true;
                    break 'outer;
                }
            }
            let ovf = self.entries.get(ctx, base + BUCKET_ENTRIES);
            if ovf == 0 {
                break;
            }
            chain = cfg.buckets + (ovf - 1);
        }
        self.entries.unlock(ctx, lock_idx);
        found
    }

    /// Which node's slab owns a byte offset (even word partition).
    fn owner_of_offset(&self, off: u64) -> usize {
        let words = self.kvs.cfg.byte_array_words();
        let layout = Layout::even(words, self.kvs.cfg.nodes, DEFAULT_CHUNK_SIZE);
        layout.home_of((off / 8) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_sizes() {
        let cfg = KvsConfig {
            buckets: 100,
            overflow_per_node: 10,
            value_capacity: 1 << 20,
            nodes: 4,
        };
        assert_eq!(cfg.entry_array_len(), (100 + 40) * 16);
        assert_eq!(cfg.byte_array_words(), (1 << 20) / 8);
    }

    #[test]
    fn pair_bytes_pads_to_words() {
        assert_eq!(pair_bytes(b"k", b"v"), 8 + 8 + 8);
        assert_eq!(pair_bytes(b"12345678", b""), 8 + 8);
        assert_eq!(pair_bytes(b"123456789", b"x"), 8 + 16 + 8);
    }
}
