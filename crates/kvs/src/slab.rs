//! A Memcached-style slab allocator over one node's partition of the byte
//! array ("We port the SlabAllocator from Memcached to manage the byte
//! array", §5.2).
//!
//! Size classes grow geometrically; each class carves fixed-size items out
//! of slabs claimed from the node's byte range by a bump pointer, and
//! freed items go to a per-class free list. All offsets are byte offsets
//! into the *global* byte array and are 8-byte aligned.

/// Growth factor between consecutive size classes (Memcached's default is
/// 1.25; we use 2⁰·²⁵ steps rounded to 8 bytes).
const GROWTH: f64 = 1.25;
/// Smallest item size in bytes.
const MIN_ITEM: usize = 64;
/// Slab size in bytes (Memcached uses 1 MiB; scaled down to suit the
/// simulation's smaller byte arrays).
const SLAB_BYTES: usize = 64 * 1024;

struct SizeClass {
    item_size: usize,
    free: Vec<u64>,
}

/// Allocator state for one node's byte range `[start, end)`.
pub struct SlabAllocator {
    classes: Vec<SizeClass>,
    bump: u64,
    end: u64,
    allocated_items: u64,
    freed_items: u64,
}

impl SlabAllocator {
    /// Manage the byte range `[start, end)`; both must be 8-byte aligned.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end);
        assert_eq!(start % 8, 0);
        let mut classes = Vec::new();
        let mut sz = MIN_ITEM;
        while sz <= SLAB_BYTES {
            classes.push(SizeClass {
                item_size: sz,
                free: Vec::new(),
            });
            let next = ((sz as f64 * GROWTH) as usize).div_ceil(8) * 8;
            sz = next.max(sz + 8);
        }
        Self {
            classes,
            bump: start,
            end,
            allocated_items: 0,
            freed_items: 0,
        }
    }

    fn class_for(&self, size: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.item_size >= size)
    }

    /// The item size an allocation of `size` bytes actually occupies.
    pub fn rounded_size(&self, size: usize) -> Option<usize> {
        self.class_for(size).map(|c| self.classes[c].item_size)
    }

    /// Allocate space for `size` bytes; returns a global byte offset, or
    /// `None` when the size exceeds the largest class or the range is
    /// exhausted.
    pub fn alloc(&mut self, size: usize) -> Option<u64> {
        let ci = self.class_for(size)?;
        if self.classes[ci].free.is_empty() {
            // Carve a new slab for this class.
            let slab_start = self.bump;
            let slab_end = slab_start.checked_add(SLAB_BYTES as u64)?;
            if slab_end > self.end {
                // Not even a full slab left: carve what remains.
                let item = self.classes[ci].item_size as u64;
                let mut at = self.bump;
                while at + item <= self.end {
                    self.classes[ci].free.push(at);
                    at += item;
                }
                self.bump = self.end;
            } else {
                let item = self.classes[ci].item_size as u64;
                let mut at = slab_start;
                while at + item <= slab_end {
                    self.classes[ci].free.push(at);
                    at += item;
                }
                self.bump = slab_end;
            }
            self.classes[ci].free.reverse(); // hand out low offsets first
        }
        let off = self.classes[ci].free.pop()?;
        self.allocated_items += 1;
        Some(off)
    }

    /// Return an allocation of `size` bytes at `offset` to its class.
    pub fn free(&mut self, offset: u64, size: usize) {
        let ci = self
            .class_for(size)
            .expect("freeing a size that was never allocatable");
        self.freed_items += 1;
        self.classes[ci].free.push(offset);
    }

    /// Live allocations (diagnostics).
    pub fn live(&self) -> u64 {
        self.allocated_items - self.freed_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn alloc_returns_aligned_disjoint_offsets() {
        let mut s = SlabAllocator::new(0, 1 << 20);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let off = s.alloc(100).unwrap();
            assert_eq!(off % 8, 0);
            assert!(seen.insert(off), "duplicate offset {off}");
        }
        assert_eq!(s.live(), 1000);
    }

    #[test]
    fn different_sizes_use_different_classes() {
        let s = SlabAllocator::new(0, 1 << 20);
        let a = s.rounded_size(1).unwrap();
        let b = s.rounded_size(100).unwrap();
        let c = s.rounded_size(1000).unwrap();
        assert!(a >= 1 && b >= 100 && c >= 1000);
        assert!(a <= b && b <= c);
    }

    #[test]
    fn free_recycles() {
        let mut s = SlabAllocator::new(0, SLAB_BYTES as u64);
        let a = s.alloc(64).unwrap();
        s.free(a, 64);
        let b = s.alloc(64).unwrap();
        assert_eq!(a, b, "freed item should be reused");
        assert_eq!(s.live(), 1);
    }

    #[test]
    fn exhaustion_returns_none_and_frees_revive() {
        let mut s = SlabAllocator::new(0, 1024);
        let mut got = Vec::new();
        while let Some(off) = s.alloc(64) {
            got.push(off);
        }
        assert_eq!(got.len(), 1024 / 64);
        assert!(s.alloc(64).is_none());
        s.free(got.pop().unwrap(), 64);
        assert!(s.alloc(64).is_some());
    }

    #[test]
    fn oversized_allocation_fails() {
        let mut s = SlabAllocator::new(0, 1 << 20);
        assert!(s.alloc(SLAB_BYTES + 1).is_none());
    }

    #[test]
    fn allocations_stay_within_range() {
        let start = 4096u64;
        let end = start + 8192;
        let mut s = SlabAllocator::new(start, end);
        while let Some(off) = s.alloc(128) {
            assert!(off >= start && off + 128 <= end, "offset {off}");
        }
    }

    #[test]
    fn mixed_sizes_do_not_overlap() {
        let mut s = SlabAllocator::new(0, 1 << 20);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for (i, size) in [64usize, 100, 333, 1000, 64, 2048, 100]
            .iter()
            .cycle()
            .take(300)
            .enumerate()
        {
            let rounded = s.rounded_size(*size).unwrap() as u64;
            let off = s.alloc(*size).unwrap_or_else(|| panic!("alloc {i} failed"));
            for &(a, b) in &ranges {
                assert!(off + rounded <= a || off >= b, "overlap at {off}");
            }
            ranges.push((off, off + rounded));
        }
    }
}
