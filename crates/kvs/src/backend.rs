//! Array backends the KVS can run on: DArray and the GAM baseline expose
//! the same element-granularity operations the store needs.

use darray::{Ctx, DArray};
use gam::GamArray;

/// What the KVS needs from a distributed array of `u64`.
pub trait KvBackend: Clone + Send + Sync + 'static {
    /// Read one element.
    fn get(&self, ctx: &mut Ctx, i: usize) -> u64;
    /// Write one element.
    fn set(&self, ctx: &mut Ctx, i: usize, v: u64);
    /// Acquire the distributed writer lock of element `i`.
    fn wlock(&self, ctx: &mut Ctx, i: usize);
    /// Release the lock held on element `i`.
    fn unlock(&self, ctx: &mut Ctx, i: usize);
    /// Global length.
    fn len(&self) -> usize;
    /// True when the array has no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// DArray-backed store (the paper's §5.2 design).
#[derive(Clone)]
pub struct DArrayBackend(pub DArray<u64>);

impl KvBackend for DArrayBackend {
    #[inline]
    fn get(&self, ctx: &mut Ctx, i: usize) -> u64 {
        self.0.get(ctx, i)
    }
    #[inline]
    fn set(&self, ctx: &mut Ctx, i: usize, v: u64) {
        self.0.set(ctx, i, v)
    }
    fn wlock(&self, ctx: &mut Ctx, i: usize) {
        self.0.wlock(ctx, i)
    }
    fn unlock(&self, ctx: &mut Ctx, i: usize) {
        self.0.unlock(ctx, i)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// GAM-backed store (the §6.5 comparison target).
#[derive(Clone)]
pub struct GamBackend(pub GamArray<u64>);

impl KvBackend for GamBackend {
    #[inline]
    fn get(&self, ctx: &mut Ctx, i: usize) -> u64 {
        self.0.read(ctx, i)
    }
    #[inline]
    fn set(&self, ctx: &mut Ctx, i: usize, v: u64) {
        self.0.write(ctx, i, v)
    }
    fn wlock(&self, ctx: &mut Ctx, i: usize) {
        self.0.wlock(ctx, i)
    }
    fn unlock(&self, ctx: &mut Ctx, i: usize) {
        self.0.unlock(ctx, i)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}
