//! Key hashing: FNV-1a, split into a bucket index and an in-bucket tag
//! ("the hash function maps a key to a particular bucket; the tag
//! distinguishes entries within a bucket", §5.2).

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over the key bytes.
#[inline]
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Bucket index for a key.
#[inline]
pub fn bucket_of(key: &[u8], buckets: u64) -> u64 {
    hash_key(key) % buckets
}

/// In-bucket tag (never 0 — 0 marks empty slots).
#[inline]
pub fn tag_of(key: &[u8]) -> u8 {
    let t = (hash_key(key) >> 56) as u8;
    if t == 0 {
        1
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_key_sensitive() {
        assert_eq!(hash_key(b"abc"), hash_key(b"abc"));
        assert_ne!(hash_key(b"abc"), hash_key(b"abd"));
        assert_ne!(hash_key(b""), hash_key(b"\0"));
    }

    #[test]
    fn bucket_in_range() {
        for k in 0..1000u64 {
            assert!(bucket_of(&k.to_le_bytes(), 37) < 37);
        }
    }

    #[test]
    fn tag_never_zero() {
        for k in 0..100_000u64 {
            assert_ne!(tag_of(&k.to_le_bytes()), 0);
        }
    }

    #[test]
    fn buckets_are_reasonably_uniform() {
        let buckets = 64u64;
        let mut counts = vec![0u64; buckets as usize];
        let n = 64_000u64;
        for k in 0..n {
            counts[bucket_of(&k.to_le_bytes(), buckets) as usize] += 1;
        }
        let expect = n / buckets;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "bucket {b} has {c}, expected ~{expect}"
            );
        }
    }
}
