//! # darray-kvs — the distributed key-value store of §5.2
//!
//! "A distributed key-value store comprises an entry array and a byte
//! array, both spanning multiple nodes. The entry array is partitioned
//! into buckets, with each bucket containing 15 entries and an overflow
//! pointer ... Each entry is 8 bytes and comprises an 8-bit tag, 16-bit
//! size, and 40-bit offset ... We port the SlabAllocator from Memcached to
//! manage the byte array."
//!
//! The store is generic over a [`KvBackend`] so the *same* code runs on
//! DArray and on the GAM baseline — mirroring the paper's §6.5 comparison,
//! where "GAM has a KVS implementation that is similar to DArray-based
//! KVS".

mod backend;
mod entry;
mod hash;
mod slab;
mod store;

pub use backend::{DArrayBackend, GamBackend, KvBackend};
pub use entry::Entry;
pub use hash::{bucket_of, tag_of};
pub use slab::SlabAllocator;
pub use store::{Kvs, KvsConfig, KvsError, KvsView};
