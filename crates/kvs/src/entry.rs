//! The 8-byte hash-table entry: `[tag:8][size:16][offset:40]` (Figure 11).

/// A packed entry. The all-zero word means "empty slot" — real entries
/// always have a nonzero tag ([`crate::tag_of`] never returns 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry(pub u64);

impl Entry {
    /// The empty slot.
    pub const EMPTY: Entry = Entry(0);

    /// Pack tag / size / offset. `size` is the byte size of the key-value
    /// pair (16 bits, so pairs are limited to 64 KiB); `offset` is the byte
    /// offset of the pair within the byte array (40 bits = 1 TiB).
    pub fn pack(tag: u8, size: u16, offset: u64) -> Self {
        debug_assert!(tag != 0, "tag 0 is reserved for empty slots");
        debug_assert!(offset < (1u64 << 40), "offset exceeds 40 bits");
        Entry(((tag as u64) << 56) | ((size as u64) << 40) | offset)
    }

    /// The 8-bit tag distinguishing entries within a bucket.
    #[inline]
    pub fn tag(self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// The byte size of the key-value pair.
    #[inline]
    pub fn size(self) -> u16 {
        (self.0 >> 40) as u16
    }

    /// Byte offset of the pair within the byte array.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & ((1u64 << 40) - 1)
    }

    /// True for the empty slot.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let e = Entry::pack(0xAB, 1234, 0x12_3456_789A);
        assert_eq!(e.tag(), 0xAB);
        assert_eq!(e.size(), 1234);
        assert_eq!(e.offset(), 0x12_3456_789A);
        assert!(!e.is_empty());
    }

    #[test]
    fn field_extremes() {
        let e = Entry::pack(0xFF, u16::MAX, (1u64 << 40) - 1);
        assert_eq!(e.tag(), 0xFF);
        assert_eq!(e.size(), u16::MAX);
        assert_eq!(e.offset(), (1u64 << 40) - 1);
        let e = Entry::pack(1, 0, 0);
        assert_eq!(e.tag(), 1);
        assert_eq!(e.size(), 0);
        assert_eq!(e.offset(), 0);
    }

    #[test]
    fn empty_is_all_zero() {
        assert!(Entry::EMPTY.is_empty());
        assert_eq!(Entry::EMPTY.0, 0);
        assert!(!Entry::pack(1, 0, 0).is_empty());
    }

    #[test]
    fn fields_do_not_bleed() {
        let e = Entry::pack(0x01, 0xFFFF, 0);
        assert_eq!(e.offset(), 0);
        assert_eq!(e.tag(), 1);
        let e = Entry::pack(0xFF, 0, (1 << 40) - 1);
        assert_eq!(e.size(), 0);
    }
}
