//! Property-based testing of the KVS against a `HashMap` model: random
//! interleavings of put/get/delete with colliding keys, bucket overflow
//! chains, and slab reuse must never diverge from the model.

use darray::{ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};
use darray_kvs::{DArrayBackend, Kvs, KvsConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, u8), // key id, value seed
    Get(u8),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| KvOp::Put(k % 48, v)),
        2 => any::<u8>().prop_map(|k| KvOp::Get(k % 48)),
        1 => any::<u8>().prop_map(|k| KvOp::Delete(k % 48)),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    // Variable-length keys exercise the word-packing paths.
    let len = 1 + (k as usize % 19);
    (0..len).map(|i| k.wrapping_add(i as u8)).collect()
}

fn value_bytes(k: u8, v: u8) -> Vec<u8> {
    let len = (k as usize * 7 + v as usize * 13) % 180 + 1;
    (0..len)
        .map(|i| v.wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn kvs_matches_hashmap_model(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        nodes in 1usize..4,
        tiny_buckets in proptest::bool::ANY,
    ) {
        let cfg = KvsConfig {
            // Tiny bucket counts force heavy collisions and overflow chains.
            buckets: if tiny_buckets { 2 } else { 32 },
            overflow_per_node: 32,
            value_capacity: 1 << 20,
            nodes,
        };
        Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::test_config(nodes));
            let entries = cluster.alloc::<u64>(cfg.entry_array_len(), ArrayOptions::default());
            let bytes = cluster.alloc::<u64>(cfg.byte_array_words(), ArrayOptions::default());
            let kvs = Kvs::new(cfg);
            let ops2 = ops.clone();
            // Node 0 drives the random sequence (single mutator => the
            // HashMap model is exact); other nodes read concurrently to
            // exercise remote caching of entries and values.
            cluster.run(ctx, 1, move |ctx, env| {
                let kv = kvs.view(
                    env.node,
                    DArrayBackend(entries.on(env.node)),
                    DArrayBackend(bytes.on(env.node)),
                );
                if env.node == 0 {
                    let mut model: std::collections::HashMap<u8, Vec<u8>> =
                        std::collections::HashMap::new();
                    for op in &ops2 {
                        match *op {
                            KvOp::Put(k, v) => {
                                let val = value_bytes(k, v);
                                kv.put(ctx, &key_bytes(k), &val).expect("put");
                                model.insert(k, val);
                            }
                            KvOp::Get(k) => {
                                assert_eq!(
                                    kv.get(ctx, &key_bytes(k)),
                                    model.get(&k).cloned(),
                                    "get({k}) diverged"
                                );
                            }
                            KvOp::Delete(k) => {
                                let was = kv.delete(ctx, &key_bytes(k));
                                assert_eq!(was, model.remove(&k).is_some(), "delete({k})");
                            }
                        }
                    }
                    // Final sweep: every model key present, every other key
                    // absent.
                    for k in 0..48u8 {
                        assert_eq!(kv.get(ctx, &key_bytes(k)), model.get(&k).cloned());
                    }
                } else {
                    // Concurrent remote readers: results must always be
                    // well-formed (either absent or a value the writer
                    // could have produced for this key).
                    for op in ops2.iter().take(60) {
                        let k = match *op {
                            KvOp::Put(k, _) | KvOp::Get(k) | KvOp::Delete(k) => k,
                        };
                        if let Some(v) = kv.get(ctx, &key_bytes(k)) {
                            assert!(!v.is_empty() && v.len() <= 200);
                        }
                    }
                }
            });
            cluster.shutdown(ctx);
        });
    }
}
