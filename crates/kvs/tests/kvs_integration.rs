//! End-to-end KVS tests over both backends: correctness against a HashMap
//! model, overflow chaining, updates, deletes, and multi-node visibility.

use darray::{ArrayOptions, Cluster, ClusterConfig, Ctx, Sim, SimConfig};
use darray_kvs::{DArrayBackend, GamBackend, Kvs, KvsConfig, KvsError, KvsView};
use gam::{gam_config_with_net, GamCluster};
use rdma_fabric::NetConfig;
use workloads::{Rng, YcsbOp, YcsbSpec, YcsbStream};

fn small_cfg(nodes: usize) -> KvsConfig {
    KvsConfig {
        buckets: 64,
        overflow_per_node: 16,
        value_capacity: 2 << 20,
        nodes,
    }
}

/// Build a DArray-backed KVS inside a fresh cluster and run `f` on every
/// node's application thread.
fn with_darray_kvs<F>(nodes: usize, cfg: KvsConfig, f: F)
where
    F: Fn(&mut Ctx, darray::NodeEnv, KvsView<DArrayBackend>) + Send + Sync + 'static,
{
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, ClusterConfig::test_config(nodes));
        let entries = cluster.alloc::<u64>(cfg.entry_array_len(), ArrayOptions::default());
        let bytes = cluster.alloc::<u64>(cfg.byte_array_words(), ArrayOptions::default());
        let kvs = Kvs::new(cfg);
        cluster.run(ctx, 1, move |ctx, env| {
            let view = kvs.view(
                env.node,
                DArrayBackend(entries.on(env.node)),
                DArrayBackend(bytes.on(env.node)),
            );
            f(ctx, env, view);
        });
        cluster.shutdown(ctx);
    });
}

#[test]
fn put_get_roundtrip_single_node() {
    with_darray_kvs(1, small_cfg(1), |ctx, _env, kv| {
        kv.put(ctx, b"hello", b"world").unwrap();
        kv.put(ctx, b"foo", b"bar").unwrap();
        assert_eq!(kv.get(ctx, b"hello"), Some(b"world".to_vec()));
        assert_eq!(kv.get(ctx, b"foo"), Some(b"bar".to_vec()));
        assert_eq!(kv.get(ctx, b"missing"), None);
    });
}

#[test]
fn updates_replace_and_reclaim() {
    with_darray_kvs(1, small_cfg(1), |ctx, _env, kv| {
        kv.put(ctx, b"k", b"v1").unwrap();
        kv.put(ctx, b"k", b"a-much-longer-second-value").unwrap();
        assert_eq!(
            kv.get(ctx, b"k"),
            Some(b"a-much-longer-second-value".to_vec())
        );
        kv.put(ctx, b"k", b"v3").unwrap();
        assert_eq!(kv.get(ctx, b"k"), Some(b"v3".to_vec()));
    });
}

#[test]
fn delete_removes_and_slot_is_reusable() {
    with_darray_kvs(1, small_cfg(1), |ctx, _env, kv| {
        kv.put(ctx, b"gone", b"soon").unwrap();
        assert!(kv.delete(ctx, b"gone"));
        assert_eq!(kv.get(ctx, b"gone"), None);
        assert!(!kv.delete(ctx, b"gone"));
        kv.put(ctx, b"gone", b"back").unwrap();
        assert_eq!(kv.get(ctx, b"gone"), Some(b"back".to_vec()));
    });
}

#[test]
fn overflow_buckets_chain() {
    // 1 main bucket: everything collides; 15 slots force overflow chains.
    let cfg = KvsConfig {
        buckets: 1,
        overflow_per_node: 8,
        value_capacity: 1 << 20,
        nodes: 1,
    };
    with_darray_kvs(1, cfg, |ctx, _env, kv| {
        for i in 0..60u64 {
            kv.put(ctx, &i.to_le_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        for i in 0..60u64 {
            assert_eq!(
                kv.get(ctx, &i.to_le_bytes()),
                Some(format!("value-{i}").into_bytes()),
                "key {i}"
            );
        }
    });
}

#[test]
fn overflow_budget_exhaustion_reports_full() {
    let cfg = KvsConfig {
        buckets: 1,
        overflow_per_node: 1,
        value_capacity: 1 << 20,
        nodes: 1,
    };
    with_darray_kvs(1, cfg, |ctx, _env, kv| {
        let mut full = false;
        for i in 0..100u64 {
            match kv.put(ctx, &i.to_le_bytes(), b"v") {
                Ok(()) => {}
                Err(KvsError::Full) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(full, "must eventually exhaust the single overflow bucket");
    });
}

#[test]
fn values_written_on_one_node_are_read_on_all() {
    with_darray_kvs(3, small_cfg(3), |ctx, env, kv| {
        let key = format!("key-from-{}", env.node);
        let val = format!("val-from-{}", env.node);
        kv.put(ctx, key.as_bytes(), val.as_bytes()).unwrap();
        env.barrier(ctx);
        for n in 0..env.nodes {
            let key = format!("key-from-{n}");
            let want = format!("val-from-{n}");
            assert_eq!(kv.get(ctx, key.as_bytes()), Some(want.into_bytes()));
        }
    });
}

#[test]
fn ycsb_stream_matches_hashmap_model() {
    // Each node owns a disjoint key space (keys tagged with the node id) so
    // the final state is deterministic; reads go everywhere after the
    // barrier.
    with_darray_kvs(2, small_cfg(2), |ctx, env, kv| {
        let spec = YcsbSpec {
            records: 50,
            get_ratio: 0.5,
            theta: 0.99,
            value_size: 24,
            distribution: workloads::RequestDistribution::Zipfian,
        };
        let mut stream = YcsbStream::new(spec, 77 + env.node as u64);
        let mut model = std::collections::HashMap::new();
        let mut version = 0u64;
        for _ in 0..300 {
            match stream.next_op() {
                YcsbOp::Get(k) => {
                    let key = format!("{}-{k}", env.node);
                    let got = kv.get(ctx, key.as_bytes());
                    assert_eq!(got, model.get(&k).cloned(), "key {key}");
                }
                YcsbOp::Put(k) => {
                    version += 1;
                    let key = format!("{}-{k}", env.node);
                    let val = YcsbStream::value_for(k, version, 24);
                    kv.put(ctx, key.as_bytes(), &val).unwrap();
                    model.insert(k, val);
                }
            }
        }
        env.barrier(ctx);
        // Cross-node verification of the other node's final state is
        // covered by `values_written_on_one_node_are_read_on_all`; here we
        // re-verify our own keys remotely-cached entries included.
        for (k, v) in &model {
            let key = format!("{}-{k}", env.node);
            assert_eq!(kv.get(ctx, key.as_bytes()), Some(v.clone()));
        }
    });
}

#[test]
fn gam_backend_behaves_identically() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let nodes = 2;
        let cfg = small_cfg(nodes);
        let g = GamCluster::with_config(ctx, gam_config_with_net(nodes, NetConfig::instant()));
        let entries = g.alloc::<u64>(cfg.entry_array_len());
        let bytes = g.alloc::<u64>(cfg.byte_array_words());
        let kvs = Kvs::new(cfg);
        g.run(ctx, 1, move |ctx, env| {
            let kv = kvs.view(
                env.node,
                GamBackend(entries.on(env.node)),
                GamBackend(bytes.on(env.node)),
            );
            let key = format!("gam-key-{}", env.node);
            kv.put(ctx, key.as_bytes(), b"gam-value").unwrap();
            env.barrier(ctx);
            for n in 0..env.nodes {
                let key = format!("gam-key-{n}");
                assert_eq!(kv.get(ctx, key.as_bytes()), Some(b"gam-value".to_vec()));
            }
        });
        g.shutdown(ctx);
    });
}

#[test]
fn concurrent_writers_to_same_bucket_serialize() {
    // All threads hammer the same key set; the bucket write lock must keep
    // the structure consistent.
    with_darray_kvs(2, small_cfg(2), |ctx, env, kv| {
        let mut rng = Rng::new(env.node as u64 * 13 + env.thread as u64);
        for i in 0..40 {
            let k = rng.next_below(8); // few keys -> heavy collisions
            let val = format!("{}-{}-{}", env.node, env.thread, i);
            kv.put(ctx, &k.to_le_bytes(), val.as_bytes()).unwrap();
            // Every present key must be readable and well-formed.
            let got = kv.get(ctx, &k.to_le_bytes()).expect("key must exist");
            assert!(String::from_utf8(got).is_ok());
        }
        env.barrier(ctx);
        for k in 0..8u64 {
            if let Some(v) = kv.get(ctx, &k.to_le_bytes()) {
                assert!(String::from_utf8(v).is_ok());
            }
        }
    });
}
