//! Stress and edge-case tests for the simulator: large thread counts,
//! nested spawns, barrier storms, mailbox fan-in, virtual-lock convoys,
//! and determinism under load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsim::{Mailbox, Sim, SimBarrier, SimConfig, VirtualLock, WaitCell};

#[test]
fn hundred_threads_with_mixed_blocking() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let total = Arc::new(AtomicU64::new(0));
        let mb: Mailbox<u64> = Mailbox::new("sink");
        let mut handles = Vec::new();
        for i in 0..100u64 {
            let t = total.clone();
            let tx = mb.clone();
            handles.push(ctx.spawn(&format!("w{i}"), move |c| {
                c.charge(i * 13 % 97);
                c.sleep(i % 7 * 100);
                t.fetch_add(i, Ordering::Relaxed);
                tx.send(c, i, 50);
            }));
        }
        let mut sum = 0;
        for _ in 0..100 {
            sum += mb.recv(ctx);
        }
        for h in handles {
            h.join(ctx);
        }
        assert_eq!(sum, (0..100).sum::<u64>());
        assert_eq!(total.load(Ordering::Relaxed), sum);
    });
}

#[test]
fn deeply_nested_spawns() {
    fn nest(c: &mut dsim::Ctx, depth: u32) -> u64 {
        if depth == 0 {
            c.charge(10);
            return 1;
        }
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        let h = c.spawn(&format!("d{depth}"), move |c2| {
            let v = nest(c2, depth - 1);
            o.store(v + 1, Ordering::Relaxed);
        });
        h.join(c);
        out.load(Ordering::Relaxed)
    }
    Sim::new(SimConfig::default()).run(|ctx| {
        assert_eq!(nest(ctx, 20), 21);
        assert_eq!(ctx.now(), 10); // only the leaf charged
    });
}

#[test]
fn barrier_storm_many_rounds() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let n = 16;
        let rounds = 50;
        let bar = SimBarrier::new(n);
        let hits = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for i in 0..n - 1 {
            let b = bar.clone();
            let h = hits.clone();
            handles.push(ctx.spawn(&format!("p{i}"), move |c| {
                for r in 0..rounds {
                    c.charge((i as u64 * 7 + r as u64) % 23 + 1);
                    b.wait(c);
                    h.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for _ in 0..rounds {
            ctx.charge(5);
            bar.wait(ctx);
            hits.fetch_add(1, Ordering::Relaxed);
        }
        for h in handles {
            h.join(ctx);
        }
        assert_eq!(hits.load(Ordering::Relaxed), (n * rounds) as u64);
    });
}

#[test]
fn mailbox_fan_in_preserves_per_sender_order() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let mb: Mailbox<(u64, u64)> = Mailbox::new("fan");
        let senders = 8u64;
        let per = 40u64;
        let mut handles = Vec::new();
        for s in 0..senders {
            let tx = mb.clone();
            handles.push(ctx.spawn(&format!("s{s}"), move |c| {
                for k in 0..per {
                    c.charge(s * 3 + 5);
                    tx.send(c, (s, k), 500);
                }
            }));
        }
        let mut last = vec![-1i64; senders as usize];
        for _ in 0..senders * per {
            let (s, k) = mb.recv(ctx);
            assert!(last[s as usize] < k as i64, "sender {s} reordered");
            last[s as usize] = k as i64;
        }
        for h in handles {
            h.join(ctx);
        }
    });
}

#[test]
fn virtual_lock_convoy_is_fair_enough() {
    // N threads each take the lock M times; total hold time must be fully
    // serialized and every thread must finish.
    Sim::new(SimConfig::default()).run(|ctx| {
        let lk = VirtualLock::new();
        let n = 10u64;
        let m = 20u64;
        let mut handles = Vec::new();
        for i in 0..n {
            let l = lk.clone();
            handles.push(ctx.spawn(&format!("t{i}"), move |c| {
                for _ in 0..m {
                    l.lock(c, 5);
                    c.charge(100);
                    l.unlock(c);
                }
            }));
        }
        let mut end = 0;
        for h in handles {
            h.join(ctx);
            end = end.max(ctx.now());
        }
        assert!(end >= n * m * 100, "critical sections serialized: {end}");
    });
}

#[test]
fn waitcell_ping_pong() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let ping = WaitCell::new();
        let pong = WaitCell::new();
        let (p1, p2) = (ping.clone(), pong.clone());
        let h = ctx.spawn("peer", move |c| {
            for _ in 0..25 {
                p1.wait(c);
                c.charge(10);
                p2.notify(c);
            }
        });
        for _ in 0..25 {
            ctx.charge(10);
            ping.notify(ctx);
            pong.wait(ctx);
        }
        h.join(ctx);
        assert!(ctx.now() >= 25 * 20);
    });
}

#[test]
fn stress_run_is_deterministic() {
    fn once() -> (u64, u64) {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u64> = Mailbox::new("d");
            let bar = SimBarrier::new(9);
            let mut handles = Vec::new();
            for i in 0..8u64 {
                let tx = mb.clone();
                let b = bar.clone();
                handles.push(ctx.spawn(&format!("x{i}"), move |c| {
                    for k in 0..30 {
                        c.charge((i * 31 + k) % 41 + 1);
                        if k % 5 == 0 {
                            c.sleep(i * 10);
                        }
                        tx.send(c, i * 1000 + k, (k % 3) * 200);
                    }
                    b.wait(c);
                }));
            }
            let mut acc = 0u64;
            for _ in 0..240 {
                acc = acc.wrapping_mul(31).wrapping_add(mb.recv(ctx));
            }
            bar.wait(ctx);
            for h in handles {
                h.join(ctx);
            }
            (acc, ctx.now())
        })
    }
    assert_eq!(once(), once());
}

#[test]
#[should_panic(expected = "virtual time limit")]
fn max_vtime_guard_fires() {
    let cfg = SimConfig {
        max_vtime: 1_000,
        ..Default::default()
    };
    Sim::new(cfg).run(|ctx| {
        ctx.sleep(10_000); // event beyond the limit poisons the sim
        ctx.sleep(1);
    });
}
