//! Virtual time: plain nanoseconds in a `u64`.

/// Virtual time in nanoseconds since simulation start.
pub type VTime = u64;

/// One microsecond of virtual time.
pub const MICROSECOND: VTime = 1_000;
/// One millisecond of virtual time.
pub const MILLISECOND: VTime = 1_000_000;
/// One second of virtual time.
pub const SECOND: VTime = 1_000_000_000;

/// Convert a virtual duration (ns) to seconds as `f64`.
#[inline]
pub fn to_secs(ns: VTime) -> f64 {
    ns as f64 / SECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(MICROSECOND * 1_000, MILLISECOND);
        assert_eq!(MILLISECOND * 1_000, SECOND);
    }

    #[test]
    fn to_secs_converts() {
        assert_eq!(to_secs(SECOND), 1.0);
        assert_eq!(to_secs(MILLISECOND), 1e-3);
        assert_eq!(to_secs(0), 0.0);
    }
}
