//! Blocking synchronization primitives in virtual time: `WaitCell` (one-shot
//! request-completion tokens, as used by the DArray slow path) and
//! `SimBarrier` (cluster-wide barriers for collective operations).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::sched::ThreadId;
use crate::time::VTime;

struct WcState {
    notified: bool,
    time: VTime,
    waiter: Option<ThreadId>,
}

/// A single-waiter notification cell. `wait` consumes one `notify`. Waiting
/// resumes the waiter at (at least) the notifier's virtual time — this is
/// how an application thread blocked on a cache-miss request observes the
/// fill latency.
pub struct WaitCell {
    inner: Arc<Mutex<WcState>>,
}

impl Clone for WaitCell {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl Default for WaitCell {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitCell {
    /// Create an empty cell.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(WcState {
                notified: false,
                time: 0,
                waiter: None,
            })),
        }
    }

    /// Block until notified; consumes the notification.
    pub fn wait(&self, ctx: &mut Ctx) {
        loop {
            {
                let mut st = self.inner.lock();
                if st.notified {
                    st.notified = false;
                    let t = st.time;
                    drop(st);
                    ctx.bump(t);
                    return;
                }
                debug_assert!(
                    st.waiter.is_none() || st.waiter == Some(ctx.tid()),
                    "WaitCell supports a single waiter"
                );
                st.waiter = Some(ctx.tid());
            }
            ctx.block();
        }
    }

    /// Notify at the notifier's current virtual time.
    pub fn notify(&self, ctx: &mut Ctx) {
        self.notify_at(ctx, ctx.now());
    }

    /// Notify with an explicit virtual timestamp (e.g. a message delivery
    /// time that is later than the notifier's own clock).
    pub fn notify_at(&self, ctx: &Ctx, at: VTime) {
        let mut st = self.inner.lock();
        st.notified = true;
        st.time = st.time.max(at);
        if let Some(tid) = st.waiter.take() {
            let mut s = ctx.inner.sched.lock();
            s.wake(tid, at);
        }
    }

    /// True if a notification is pending (unconsumed).
    pub fn is_notified(&self) -> bool {
        self.inner.lock().notified
    }
}

struct BarState {
    arrived: usize,
    generation: u64,
    max_t: VTime,
    waiters: Vec<ThreadId>,
}

/// A reusable barrier over `n` simulated threads. All participants resume at
/// the maximum arrival time (plus `cost` ns, modeling the barrier's own
/// communication latency).
pub struct SimBarrier {
    inner: Arc<Mutex<BarState>>,
    n: usize,
    cost: VTime,
}

impl Clone for SimBarrier {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            n: self.n,
            cost: self.cost,
        }
    }
}

impl SimBarrier {
    /// Barrier over `n` participants with zero additional latency.
    pub fn new(n: usize) -> Self {
        Self::with_cost(n, 0)
    }

    /// Barrier over `n` participants; releasing it charges `cost` ns to
    /// every participant (models the synchronization round-trip).
    pub fn with_cost(n: usize, cost: VTime) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            inner: Arc::new(Mutex::new(BarState {
                arrived: 0,
                generation: 0,
                max_t: 0,
                waiters: Vec::new(),
            })),
            n,
            cost,
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Wait for all `n` participants; returns the release time.
    pub fn wait(&self, ctx: &mut Ctx) -> VTime {
        let my_gen;
        {
            let mut st = self.inner.lock();
            st.max_t = st.max_t.max(ctx.now());
            st.arrived += 1;
            my_gen = st.generation;
            if st.arrived == self.n {
                let release = st.max_t + self.cost;
                st.arrived = 0;
                st.max_t = 0;
                st.generation += 1;
                let waiters = std::mem::take(&mut st.waiters);
                drop(st);
                {
                    let mut s = ctx.inner.sched.lock();
                    for tid in waiters {
                        s.wake(tid, release);
                    }
                }
                ctx.bump(release);
                return release;
            }
            st.waiters.push(ctx.tid());
        }
        loop {
            ctx.block();
            let st = self.inner.lock();
            if st.generation != my_gen {
                break;
            }
        }
        ctx.now()
    }
}

/// A spinlock whose *contention happens in virtual time*.
///
/// Under the single-token scheduler a host `Mutex` can never be observed
/// contended, so systems that serialize on locks (GAM's per-chunk access
/// lock, the §4.1 lock-based strawman, distributed lock holders) use this
/// instead: acquisition CASes a sentinel into the word; waiters spin with
/// [`Ctx::spin_hint`], accumulating the virtual wait that a real contended
/// lock would impose.
pub struct VirtualLock {
    /// Sentinel `u64::MAX` while held; otherwise the virtual time at which
    /// the lock was last released.
    state: Arc<std::sync::atomic::AtomicU64>,
}

const VLOCK_HELD: u64 = u64::MAX;

impl Clone for VirtualLock {
    fn clone(&self) -> Self {
        Self {
            state: self.state.clone(),
        }
    }
}

impl Default for VirtualLock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualLock {
    /// Create an unlocked lock.
    pub fn new() -> Self {
        Self {
            state: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Acquire, spinning in virtual time while held by another thread.
    /// `acquire_cost` ns is charged for the successful acquisition itself.
    pub fn lock(&self, ctx: &mut Ctx, acquire_cost: VTime) {
        use std::sync::atomic::Ordering;
        loop {
            let cur = self.state.load(Ordering::Acquire);
            if cur != VLOCK_HELD {
                if self
                    .state
                    .compare_exchange(cur, VLOCK_HELD, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // A release that happened "later" in virtual time than
                    // our current clock still delays us.
                    ctx.bump(cur);
                    ctx.charge(acquire_cost);
                    return;
                }
            } else {
                ctx.spin_hint(acquire_cost.max(10));
            }
        }
    }

    /// Try to acquire without spinning; returns false if held.
    pub fn try_lock(&self, ctx: &mut Ctx, acquire_cost: VTime) -> bool {
        use std::sync::atomic::Ordering;
        let cur = self.state.load(Ordering::Acquire);
        if cur == VLOCK_HELD {
            return false;
        }
        if self
            .state
            .compare_exchange(cur, VLOCK_HELD, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            ctx.bump(cur);
            ctx.charge(acquire_cost);
            true
        } else {
            false
        }
    }

    /// Release at the caller's current virtual time.
    pub fn unlock(&self, ctx: &Ctx) {
        use std::sync::atomic::Ordering;
        debug_assert_eq!(self.state.load(Ordering::Acquire), VLOCK_HELD);
        self.state.store(ctx.now(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimConfig};

    #[test]
    fn virtual_lock_serializes_in_virtual_time() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let lk = VirtualLock::new();
            let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let mut hs = Vec::new();
            for i in 0..4u64 {
                let l = lk.clone();
                let t = total.clone();
                hs.push(ctx.spawn(&format!("w{i}"), move |c| {
                    l.lock(c, 5);
                    // Hold for 100 virtual ns.
                    let v = t.load(std::sync::atomic::Ordering::Relaxed);
                    c.charge(100);
                    t.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                    l.unlock(c);
                }));
            }
            let mut end = 0;
            for h in hs {
                h.join(ctx);
                end = end.max(ctx.now());
            }
            assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 4);
            // Four holders serialized: at least 4 * (100 + 5) ns elapsed.
            assert!(end >= 420, "end = {end}");
        });
    }

    #[test]
    fn try_lock_fails_while_held() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let lk = VirtualLock::new();
            assert!(lk.try_lock(ctx, 1));
            assert!(!lk.try_lock(ctx, 1));
            lk.unlock(ctx);
            assert!(lk.try_lock(ctx, 1));
            lk.unlock(ctx);
        });
    }

    #[test]
    fn waitcell_roundtrip() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let cell = WaitCell::new();
            let c2 = cell.clone();
            let h = ctx.spawn("n", move |c| {
                c.charge(3_000);
                c2.notify(c);
            });
            cell.wait(ctx);
            assert_eq!(ctx.now(), 3_000);
            h.join(ctx);
        });
    }

    #[test]
    fn waitcell_notify_before_wait() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let cell = WaitCell::new();
            let c2 = cell.clone();
            let h = ctx.spawn("n", move |c| {
                c.charge(10);
                c2.notify(c);
            });
            ctx.sleep(1_000);
            assert!(cell.is_notified());
            cell.wait(ctx);
            assert!(!cell.is_notified());
            assert_eq!(ctx.now(), 1_000);
            h.join(ctx);
        });
    }

    #[test]
    fn barrier_releases_all_at_max_time() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let bar = SimBarrier::new(3);
            let mut hs = Vec::new();
            for i in 0..2u64 {
                let b = bar.clone();
                hs.push(ctx.spawn(&format!("p{i}"), move |c| {
                    c.charge(100 * (i + 1));
                    let t = b.wait(c);
                    assert_eq!(t, 500);
                }));
            }
            ctx.charge(500);
            let t = bar.wait(ctx);
            assert_eq!(t, 500);
            for h in hs {
                h.join(ctx);
            }
        });
    }

    #[test]
    fn barrier_is_reusable() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let bar = SimBarrier::new(2);
            let b = bar.clone();
            let h = ctx.spawn("p", move |c| {
                for _ in 0..5 {
                    c.charge(10);
                    b.wait(c);
                }
            });
            for _ in 0..5 {
                ctx.charge(7);
                bar.wait(ctx);
            }
            h.join(ctx);
        });
    }

    #[test]
    fn barrier_cost_is_charged() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let bar = SimBarrier::with_cost(1, 2_000);
            let t = bar.wait(ctx);
            assert_eq!(t, 2_000);
            assert_eq!(ctx.now(), 2_000);
        });
    }
}
