//! The single-token cooperative scheduler.
//!
//! Exactly one simulated thread executes at any instant. When the running
//! thread blocks, yields, or finishes, it enters [`SimInner::reschedule`],
//! which drains every event due before the earliest runnable thread and then
//! hands the token to that thread (possibly itself).
//!
//! All cross-thread memory accesses are serialized through the scheduler
//! mutex and parker handoffs, so simulated threads may freely share state;
//! the atomics used by the DArray fast path are exercised for their
//! *semantics*, not because `dsim` requires them.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AO};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::ctx::Ctx;
use crate::time::VTime;

/// Identifier of a simulated thread. The root thread is always 0.
pub type ThreadId = usize;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Maximum virtual run-ahead (ns) a thread accumulates via
    /// [`Ctx::charge`] before voluntarily yielding. Bounds the clock skew
    /// of the lax-synchronization execution model.
    pub quantum: VTime,
    /// Hard upper bound on virtual time; exceeding it poisons the
    /// simulation (guards against accidental infinite loops in tests).
    pub max_vtime: VTime,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            quantum: 50_000, // 50 µs
            max_vtime: u64::MAX,
        }
    }
}

/// Counters describing a finished (or running) simulation.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Number of token handoffs between simulated threads.
    pub switches: u64,
    /// Number of events processed from the event queue.
    pub events: u64,
    /// Total simulated threads ever spawned (including the root).
    pub spawned: u64,
    /// Threads still live when the root closure returned (abandoned).
    pub abandoned: u64,
}

/// A discrete event: at `time`, perform `action`. Ordered by `(time, seq)`
/// so simultaneous events process in creation order (deterministic).
pub(crate) struct Event {
    pub(crate) time: VTime,
    pub(crate) seq: u64,
    pub(crate) action: Action,
}

pub(crate) enum Action {
    /// Make a blocked thread runnable at the event time.
    Wake(ThreadId),
    /// Arbitrary scheduler-context action (message delivery, RDMA copy...).
    Call(Box<dyn FnOnce(&mut SchedState) + Send>),
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    Running,
    Runnable,
    Blocked,
    Done,
}

pub(crate) struct Parker {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Self {
        Self {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn park(&self) {
        let mut g = self.flag.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
        *g = false;
    }

    pub(crate) fn unpark(&self) {
        let mut g = self.flag.lock();
        *g = true;
        self.cv.notify_one();
    }
}

pub(crate) struct Tcb {
    /// Virtual clock of the thread, shared with its `Ctx` so the fast path
    /// (`charge`) is a single relaxed RMW without taking the scheduler lock.
    pub(crate) clock: Arc<AtomicU64>,
    pub(crate) state: TState,
    pub(crate) parker: Arc<Parker>,
    pub(crate) name: String,
}

/// Candidate entry in the runnable min-heap.
struct RunKey(VTime, ThreadId);

impl PartialEq for RunKey {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for RunKey {}
impl PartialOrd for RunKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RunKey {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.0, other.1).cmp(&(self.0, self.1))
    }
}

/// All mutable scheduler state, guarded by `SimInner::sched`.
pub struct SchedState {
    events: BinaryHeap<Event>,
    runnable: BinaryHeap<RunKey>,
    pub(crate) tcbs: Vec<Tcb>,
    pub(crate) live: usize,
    seq: u64,
    pub(crate) poisoned: Option<String>,
    pub(crate) stats: SimStats,
    max_vtime: VTime,
}

impl SchedState {
    /// Make a blocked thread runnable no earlier than `at`. No-op if the
    /// thread is not blocked (defensive; the token discipline should make
    /// that impossible).
    pub(crate) fn wake(&mut self, tid: ThreadId, at: VTime) {
        let tcb = &mut self.tcbs[tid];
        if tcb.state != TState::Blocked {
            return;
        }
        tcb.clock.fetch_max(at, AO::Relaxed);
        tcb.state = TState::Runnable;
        let clk = tcb.clock.load(AO::Relaxed);
        self.runnable.push(RunKey(clk, tid));
    }

    /// Schedule `action` to happen at absolute virtual time `time`.
    pub(crate) fn push_event(&mut self, time: VTime, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event { time, seq, action });
    }

    fn spawn_tcb(&mut self, name: String, clock: VTime, state: TState) -> ThreadId {
        let tid = self.tcbs.len();
        self.tcbs.push(Tcb {
            clock: Arc::new(AtomicU64::new(clock)),
            state,
            parker: Arc::new(Parker::new()),
            name,
        });
        self.live += 1;
        self.stats.spawned += 1;
        tid
    }

    /// Peek the earliest valid runnable thread, discarding stale entries.
    fn peek_runnable(&mut self) -> Option<(VTime, ThreadId)> {
        while let Some(RunKey(t, tid)) = self.runnable.peek().map(|k| RunKey(k.0, k.1)) {
            if self.tcbs[tid].state == TState::Runnable {
                return Some((t, tid));
            }
            self.runnable.pop();
        }
        None
    }

    /// Transition the *currently running* thread to Runnable (cooperative
    /// yield) and queue it for re-dispatch at its current clock.
    pub(crate) fn make_runnable_self(&mut self, tid: ThreadId) {
        let tcb = &mut self.tcbs[tid];
        debug_assert_eq!(tcb.state, TState::Running);
        tcb.state = TState::Runnable;
        let clk = tcb.clock.load(AO::Relaxed);
        self.runnable.push(RunKey(clk, tid));
    }

    /// Transition the *currently running* thread to Blocked. The caller must
    /// already have registered itself with whatever will wake it.
    pub(crate) fn set_blocked(&mut self, tid: ThreadId) {
        debug_assert_eq!(self.tcbs[tid].state, TState::Running);
        self.tcbs[tid].state = TState::Blocked;
    }

    /// Spawn a new simulated thread in the Runnable state.
    pub(crate) fn spawn_runnable(&mut self, name: String, clock: VTime) -> ThreadId {
        let tid = self.spawn_tcb(name, clock, TState::Runnable);
        self.runnable.push(RunKey(clock, tid));
        tid
    }

    pub(crate) fn clock_handle(&self, tid: ThreadId) -> Arc<AtomicU64> {
        self.tcbs[tid].clock.clone()
    }

    pub(crate) fn parker_handle(&self, tid: ThreadId) -> Arc<Parker> {
        self.tcbs[tid].parker.clone()
    }

    pub(crate) fn stats_snapshot(&self) -> SimStats {
        self.stats.clone()
    }

    fn blocked_dump(&self) -> String {
        let mut out = String::new();
        for (tid, tcb) in self.tcbs.iter().enumerate() {
            if tcb.state == TState::Blocked || tcb.state == TState::Runnable {
                out.push_str(&format!(
                    "\n  thread {} ({:?}) state={:?} clock={}",
                    tid,
                    tcb.name,
                    tcb.state,
                    tcb.clock.load(AO::Relaxed)
                ));
            }
        }
        out
    }
}

enum NextStep {
    /// Hand the token to this thread.
    Thread(ThreadId),
    /// No runnable thread and no event: the simulation is stuck.
    Idle,
}

pub(crate) struct SimInner {
    pub(crate) cfg: SimConfig,
    pub(crate) sched: Mutex<SchedState>,
    /// First panic message from any simulated thread.
    pub(crate) panic_msg: Mutex<Option<String>>,
}

impl SimInner {
    /// Drain due events, then pick the next thread. Must be called with the
    /// scheduler locked; returns with it still locked.
    fn advance(s: &mut SchedState) -> NextStep {
        loop {
            let cand = s.peek_runnable();
            let evt_due = match (s.events.peek().map(|e| e.time), cand) {
                (Some(et), Some((ct, _))) => et <= ct,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if evt_due {
                let evt = s.events.pop().expect("peeked event");
                s.stats.events += 1;
                if evt.time > s.max_vtime && s.poisoned.is_none() {
                    s.poisoned = Some(format!(
                        "virtual time limit exceeded: event at {} > max_vtime {}",
                        evt.time, s.max_vtime
                    ));
                }
                match evt.action {
                    Action::Wake(tid) => s.wake(tid, evt.time),
                    Action::Call(f) => f(s),
                }
                continue;
            }
            return match cand {
                Some((_, tid)) => NextStep::Thread(tid),
                None => NextStep::Idle,
            };
        }
    }

    /// Give up the token. The caller must already have set its own TCB state
    /// (Runnable to keep competing, Blocked to wait). Returns once this
    /// thread holds the token again.
    pub(crate) fn reschedule(&self, self_tid: ThreadId) {
        let mut s = self.sched.lock();
        match Self::advance(&mut s) {
            NextStep::Thread(tid) => {
                s.runnable.pop();
                s.tcbs[tid].state = TState::Running;
                if tid == self_tid {
                    return;
                }
                s.stats.switches += 1;
                let next = s.tcbs[tid].parker.clone();
                let own = s.tcbs[self_tid].parker.clone();
                drop(s);
                next.unpark();
                own.park();
            }
            NextStep::Idle => {
                self.handle_idle(s, self_tid, false);
            }
        }
    }

    /// Mark the calling thread finished and hand the token onward. The OS
    /// thread exits after this returns.
    pub(crate) fn retire(&self, self_tid: ThreadId) {
        let mut s = self.sched.lock();
        s.tcbs[self_tid].state = TState::Done;
        s.live -= 1;
        if s.live == 0 {
            return;
        }
        match Self::advance(&mut s) {
            NextStep::Thread(tid) => {
                s.runnable.pop();
                s.tcbs[tid].state = TState::Running;
                s.stats.switches += 1;
                let next = s.tcbs[tid].parker.clone();
                drop(s);
                next.unpark();
            }
            NextStep::Idle => {
                self.handle_idle(s, self_tid, true);
            }
        }
    }

    /// The simulation is stuck: no runnable thread, no pending event, yet
    /// live threads remain. Poison the simulation and wake the root so the
    /// failure surfaces as a panic in the user's test/bench thread.
    fn handle_idle(
        &self,
        mut s: parking_lot::MutexGuard<'_, SchedState>,
        self_tid: ThreadId,
        retiring: bool,
    ) {
        if s.live == 0 {
            return;
        }
        let child_panic = self.panic_msg.lock().clone();
        let msg = match child_panic {
            Some(p) => format!("simulated thread panicked: {p}"),
            None => format!(
                "simulation deadlock: {} live thread(s), none runnable, no events pending{}",
                s.live,
                s.blocked_dump()
            ),
        };
        if self_tid == 0 {
            panic!("{msg}");
        }
        s.poisoned = Some(msg);
        // Force-wake the root thread so the panic surfaces there.
        if s.tcbs[0].state == TState::Blocked {
            s.tcbs[0].state = TState::Running;
            let root = s.tcbs[0].parker.clone();
            drop(s);
            root.unpark();
        } else {
            drop(s);
        }
        if !retiring {
            // This thread can never make progress; park it forever. The OS
            // thread leaks, but the process is about to fail the test anyway.
            let own = {
                let s = self.sched.lock();
                s.tcbs[self_tid].parker.clone()
            };
            loop {
                own.park();
            }
        }
    }

    /// Panic in the current simulated thread if the simulation was poisoned.
    pub(crate) fn check_poison(&self, _self_tid: ThreadId) {
        let msg = self.sched.lock().poisoned.clone();
        if let Some(m) = msg {
            panic!("{m}");
        }
    }

    pub(crate) fn record_panic(&self, msg: String) {
        let mut g = self.panic_msg.lock();
        if g.is_none() {
            *g = Some(msg);
        }
    }
}

/// A simulation instance. Construct with [`Sim::new`] and start it with
/// [`Sim::run`], which turns the calling OS thread into simulated thread 0
/// (the *root*). The simulation ends when the root closure returns; any
/// simulated threads still live at that point are abandoned (reported in
/// [`SimStats::abandoned`]).
pub struct Sim {
    cfg: SimConfig,
}

impl Sim {
    /// Create a simulation with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// Run `f` as the root simulated thread and return its result.
    ///
    /// Panics if any simulated thread panicked or the simulation
    /// deadlocked.
    pub fn run<F, R>(self, f: F) -> R
    where
        F: FnOnce(&mut Ctx) -> R,
    {
        let max_vtime = self.cfg.max_vtime;
        let inner = Arc::new(SimInner {
            cfg: self.cfg,
            sched: Mutex::new(SchedState {
                events: BinaryHeap::new(),
                runnable: BinaryHeap::new(),
                tcbs: Vec::new(),
                live: 0,
                seq: 0,
                poisoned: None,
                stats: SimStats::default(),
                max_vtime,
            }),
            panic_msg: Mutex::new(None),
        });
        {
            let mut s = inner.sched.lock();
            let tid = s.spawn_tcb("root".to_string(), 0, TState::Running);
            debug_assert_eq!(tid, 0);
        }
        let mut ctx = Ctx::new_root(inner.clone());
        let out = f(&mut ctx);
        {
            let mut s = inner.sched.lock();
            s.tcbs[0].state = TState::Done;
            s.live -= 1;
            s.stats.abandoned = s.live as u64;
        }
        if let Some(msg) = inner.panic_msg.lock().take() {
            panic!("simulated thread panicked: {msg}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ordering_is_time_then_seq() {
        let a = Event {
            time: 5,
            seq: 1,
            action: Action::Wake(0),
        };
        let b = Event {
            time: 5,
            seq: 2,
            action: Action::Wake(0),
        };
        let c = Event {
            time: 3,
            seq: 9,
            action: Action::Wake(0),
        };
        let mut h = BinaryHeap::new();
        h.push(a);
        h.push(b);
        h.push(c);
        let order: Vec<(VTime, u64)> =
            std::iter::from_fn(|| h.pop().map(|e| (e.time, e.seq))).collect();
        assert_eq!(order, vec![(3, 9), (5, 1), (5, 2)]);
    }

    #[test]
    fn root_runs_and_returns() {
        let r = Sim::new(SimConfig::default()).run(|ctx| {
            ctx.charge(123);
            assert_eq!(ctx.now(), 123);
            7
        });
        assert_eq!(r, 7);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        Sim::new(SimConfig::default()).run(|ctx| {
            ctx.sleep(10_000);
            assert_eq!(ctx.now(), 10_000);
            ctx.sleep(5);
            assert_eq!(ctx.now(), 10_005);
        });
    }

    #[test]
    fn spawned_thread_inherits_clock_and_join_syncs() {
        Sim::new(SimConfig::default()).run(|ctx| {
            ctx.charge(50);
            let h = ctx.spawn("w", |c| {
                assert_eq!(c.now(), 50);
                c.charge(1_000);
            });
            h.join(ctx);
            assert_eq!(ctx.now(), 1_050);
        });
    }

    #[test]
    fn threads_interleave_by_virtual_clock() {
        // Two workers record the order of their steps; the lower-clock
        // thread must always run first.
        use std::sync::Mutex as StdMutex;
        let log = Arc::new(StdMutex::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        // quantum = 1 forces a yield after every charge, so execution order
        // tracks virtual-time order exactly (no run-ahead laxity).
        let cfg = SimConfig {
            quantum: 1,
            ..Default::default()
        };
        Sim::new(cfg).run(move |ctx| {
            let a = ctx.spawn("a", move |c| {
                for i in 0..3 {
                    c.charge(100);
                    l1.lock().unwrap().push(("a", i, c.now()));
                    c.yield_now();
                }
            });
            let b = ctx.spawn("b", move |c| {
                for i in 0..3 {
                    c.charge(40);
                    l2.lock().unwrap().push(("b", i, c.now()));
                    c.yield_now();
                }
            });
            a.join(ctx);
            b.join(ctx);
        });
        let log = log.lock().unwrap().clone();
        // Events must be sorted by virtual time.
        let times: Vec<u64> = log.iter().map(|e| e.2).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "log: {log:?}");
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> (u64, Vec<(String, u64)>) {
            use std::sync::Mutex as StdMutex;
            let log = Arc::new(StdMutex::new(Vec::new()));
            let out = log.clone();
            let end = Sim::new(SimConfig::default()).run(move |ctx| {
                let mut handles = Vec::new();
                for t in 0..4u64 {
                    let l = log.clone();
                    handles.push(ctx.spawn(&format!("w{t}"), move |c| {
                        for i in 0..5 {
                            c.charge(37 * (t + 1) + i);
                            l.lock().unwrap().push((format!("w{t}"), c.now()));
                            c.yield_now();
                        }
                    }));
                }
                for h in handles {
                    h.join(ctx);
                }
                ctx.now()
            });
            let v = out.lock().unwrap().clone();
            (end, v)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_in_root() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: crate::Mailbox<u8> = crate::Mailbox::new("never");
            mb.recv(ctx); // nobody ever sends
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn child_panic_propagates_to_root() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let h = ctx.spawn("bad", |_c| panic!("boom"));
            h.join(ctx);
        });
    }

    #[test]
    fn quantum_forces_yield_but_preserves_clock() {
        let cfg = SimConfig {
            quantum: 1_000,
            ..Default::default()
        };
        Sim::new(cfg).run(|ctx| {
            for _ in 0..100 {
                ctx.charge(100); // will cross the quantum several times
            }
            assert_eq!(ctx.now(), 10_000);
        });
    }

    #[test]
    fn many_threads_run_to_completion() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mut handles = Vec::new();
            for i in 0..32 {
                handles.push(ctx.spawn(&format!("t{i}"), move |c| {
                    c.charge(10 * (i as u64 + 1));
                    c.yield_now();
                    c.charge(5);
                }));
            }
            for h in handles {
                h.join(ctx);
            }
            assert_eq!(ctx.stats().spawned, 33);
        });
    }
}
