//! Virtual-time mailboxes: the inter-layer queues of Figure 2 (local-request
//! queue, RPC-message queue, RDMA-request queue) are all built on this.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::sched::ThreadId;
use crate::time::VTime;

struct MbQueue<T> {
    items: VecDeque<(VTime, T)>,
    waiter: Option<ThreadId>,
}

struct MbInner<T> {
    q: Mutex<MbQueue<T>>,
    #[allow(dead_code)]
    name: String,
}

/// An unbounded, virtually-timed message queue. Senders schedule a delivery
/// event `delay` nanoseconds in the future; the receiver's clock is advanced
/// to the delivery time when it consumes the message.
///
/// Delivery order is deterministic: events execute in `(time, creation-seq)`
/// order, so messages from one sender with non-decreasing delivery times
/// arrive FIFO (the fabric relies on this for RC queue-pair ordering).
pub struct Mailbox<T> {
    inner: Arc<MbInner<T>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> Mailbox<T> {
    /// Create a mailbox. The name is used in diagnostics only.
    pub fn new(name: &str) -> Self {
        Self {
            inner: Arc::new(MbInner {
                q: Mutex::new(MbQueue {
                    items: VecDeque::new(),
                    waiter: None,
                }),
                name: name.to_string(),
            }),
        }
    }

    /// Send `msg`, delivered `delay` ns after the sender's current time.
    pub fn send(&self, ctx: &Ctx, msg: T, delay: VTime) {
        self.send_at(ctx, msg, ctx.now() + delay);
    }

    /// Send `msg` with an absolute delivery time (which must not be in the
    /// receiver's consumed past for meaningful timing; the fabric guarantees
    /// monotone per-link delivery times).
    pub fn send_at(&self, ctx: &Ctx, msg: T, deliver_at: VTime) {
        let inner = self.inner.clone();
        ctx.schedule(
            deliver_at,
            Box::new(move |s| {
                let mut q = inner.q.lock();
                q.items.push_back((deliver_at, msg));
                if let Some(tid) = q.waiter.take() {
                    s.wake(tid, deliver_at);
                }
            }),
        );
    }

    /// Receive the next message, blocking in virtual time until one arrives.
    pub fn recv(&self, ctx: &mut Ctx) -> T {
        loop {
            {
                let mut q = self.inner.q.lock();
                if let Some((t, msg)) = q.items.pop_front() {
                    drop(q);
                    ctx.bump(t);
                    return msg;
                }
                debug_assert!(
                    q.waiter.is_none() || q.waiter == Some(ctx.tid()),
                    "mailbox supports a single receiver"
                );
                q.waiter = Some(ctx.tid());
            }
            ctx.block();
        }
    }

    /// Receive with a timeout: blocks in virtual time until a message
    /// arrives or the receiver's clock reaches absolute time `deadline`,
    /// whichever comes first. Returns `None` on timeout (with the clock
    /// advanced to at least `deadline`).
    ///
    /// The timeout is realized as a scheduled event that fires only if this
    /// thread is still registered as the mailbox waiter — a message arriving
    /// earlier un-registers the waiter, cancelling the timer, so a timer for
    /// a completed wait never perturbs later blocking points.
    pub fn recv_deadline(&self, ctx: &mut Ctx, deadline: VTime) -> Option<T> {
        loop {
            {
                let mut q = self.inner.q.lock();
                if let Some((t, msg)) = q.items.pop_front() {
                    drop(q);
                    ctx.bump(t);
                    return Some(msg);
                }
                if ctx.now() >= deadline {
                    if q.waiter == Some(ctx.tid()) {
                        q.waiter = None;
                    }
                    return None;
                }
                debug_assert!(
                    q.waiter.is_none() || q.waiter == Some(ctx.tid()),
                    "mailbox supports a single receiver"
                );
                q.waiter = Some(ctx.tid());
            }
            let inner = self.inner.clone();
            let tid = ctx.tid();
            ctx.schedule(
                deadline,
                Box::new(move |s| {
                    let mut q = inner.q.lock();
                    if q.waiter == Some(tid) {
                        q.waiter = None;
                        s.wake(tid, deadline);
                    }
                }),
            );
            ctx.block();
        }
    }

    /// Receive with a relative timeout of `ns` nanoseconds; see
    /// [`Mailbox::recv_deadline`].
    pub fn recv_timeout(&self, ctx: &mut Ctx, ns: VTime) -> Option<T> {
        let deadline = ctx.now() + ns;
        self.recv_deadline(ctx, deadline)
    }

    /// Non-blocking receive. Note the lax-synchronization caveat: a message
    /// whose delivery event has not yet been processed (because this thread
    /// is running ahead) is not visible; `try_recv` is intended for receiver
    /// loops that alternate with blocking `recv`.
    pub fn try_recv(&self, ctx: &mut Ctx) -> Option<T> {
        let mut q = self.inner.q.lock();
        if let Some((t, msg)) = q.items.pop_front() {
            drop(q);
            ctx.bump(t);
            Some(msg)
        } else {
            None
        }
    }

    /// Number of messages currently delivered and waiting.
    pub fn len(&self) -> usize {
        self.inner.q.lock().items.len()
    }

    /// True if no delivered message is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimConfig};

    #[test]
    fn send_recv_advances_receiver_clock() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u32> = Mailbox::new("t");
            let tx = mb.clone();
            let h = ctx.spawn("tx", move |c| {
                c.charge(100);
                tx.send(c, 42, 1_000);
            });
            let v = mb.recv(ctx);
            assert_eq!(v, 42);
            assert_eq!(ctx.now(), 1_100);
            h.join(ctx);
        });
    }

    #[test]
    fn messages_arrive_in_delivery_time_order() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u8> = Mailbox::new("order");
            let tx = mb.clone();
            let h = ctx.spawn("tx", move |c| {
                tx.send_at(c, 1, 500);
                tx.send_at(c, 2, 600);
                tx.send_at(c, 3, 700);
            });
            assert_eq!(mb.recv(ctx), 1);
            assert_eq!(mb.recv(ctx), 2);
            assert_eq!(mb.recv(ctx), 3);
            assert_eq!(ctx.now(), 700);
            h.join(ctx);
        });
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u8> = Mailbox::new("e");
            assert!(mb.try_recv(ctx).is_none());
            assert!(mb.is_empty());
        });
    }

    #[test]
    fn recv_deadline_times_out_and_advances_clock() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u8> = Mailbox::new("to");
            assert_eq!(mb.recv_deadline(ctx, 5_000), None);
            assert!(ctx.now() >= 5_000);
        });
    }

    #[test]
    fn recv_deadline_returns_early_message() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u8> = Mailbox::new("early");
            let tx = mb.clone();
            let h = ctx.spawn("tx", move |c| tx.send(c, 3, 700));
            assert_eq!(mb.recv_deadline(ctx, 50_000), Some(3));
            assert_eq!(ctx.now(), 700);
            h.join(ctx);
        });
    }

    #[test]
    fn stale_timeout_does_not_disturb_later_waits() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u8> = Mailbox::new("stale");
            let tx = mb.clone();
            let h = ctx.spawn("tx", move |c| {
                tx.send(c, 1, 100);
                tx.send(c, 2, 90_000);
            });
            // First wait completes at t=100, long before its own deadline.
            assert_eq!(mb.recv_deadline(ctx, 60_000), Some(1));
            assert_eq!(ctx.now(), 100);
            // The cancelled 60_000 timer must not eject the second wait,
            // whose own deadline is later than the message.
            assert_eq!(mb.recv_deadline(ctx, 80_000), None);
            assert!(ctx.now() >= 80_000 && ctx.now() < 90_000);
            assert_eq!(mb.recv(ctx), 2);
            assert_eq!(ctx.now(), 90_000);
            h.join(ctx);
        });
    }

    #[test]
    fn recv_timeout_is_relative() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u8> = Mailbox::new("rel");
            ctx.sleep(1_000);
            assert_eq!(mb.recv_timeout(ctx, 2_000), None);
            assert!(ctx.now() >= 3_000);
        });
    }

    #[test]
    fn recv_while_message_already_queued_does_not_block() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let mb: Mailbox<u8> = Mailbox::new("q");
            let tx = mb.clone();
            let h = ctx.spawn("tx", move |c| tx.send(c, 9, 10));
            ctx.sleep(1_000); // message delivered long ago
            assert_eq!(mb.recv(ctx), 9);
            assert_eq!(ctx.now(), 1_000); // receiver was already later
            h.join(ctx);
        });
    }
}
