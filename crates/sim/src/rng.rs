//! Seeded deterministic RNG for fault injection and randomized workloads.
//!
//! `rand` and wall-clock entropy are unavailable by design — every draw must
//! be reproducible from a seed so a failing chaos run can be replayed
//! bit-for-bit. The generator is xorshift64* over a splitmix64-conditioned
//! seed: tiny state, good enough statistics for schedule perturbation, and
//! trivially forkable into independent per-entity streams.

/// Deterministic pseudo-random generator (splitmix64 seeding, xorshift64*
/// stream).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

/// splitmix64 output function: conditions arbitrary (even all-zero) seeds
/// into well-mixed xorshift state.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from `seed`. Any seed value is fine, including 0.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            state = 0x853C_49E6_748F_EA9B; // xorshift state must be nonzero
        }
        Self { state }
    }

    /// Derive an independent stream for sub-entity `salt` (e.g. one stream
    /// per NIC from a cluster-wide seed). Streams with different salts are
    /// decorrelated; the parent is not advanced.
    pub fn fork(&self, salt: u64) -> Rng {
        let mut s = self
            .state
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(salt);
        let _ = splitmix64(&mut s);
        Rng::new(s)
    }

    /// Next raw 64-bit draw (xorshift64*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit draw (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, n)`. `n` must be nonzero. The modulo bias is
    /// negligible for the fault-schedule ranges used here (`n << 2^64`).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "Rng::below(0)");
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "Rng::range empty ({lo}..{hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `num_ppm / 1_000_000`. Integer
    /// parts-per-million keep fault probabilities exactly reproducible in
    /// config files (no float rounding).
    #[inline]
    pub fn chance_ppm(&mut self, num_ppm: u32) -> bool {
        if num_ppm == 0 {
            return false;
        }
        self.below(1_000_000) < num_ppm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
            let v = r.range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let root = Rng::new(99);
        let mut a1 = root.fork(1);
        let mut a2 = root.fork(1);
        let mut b = root.fork(2);
        let mut matches = 0;
        for _ in 0..256 {
            let x = a1.next_u64();
            assert_eq!(x, a2.next_u64());
            if x == b.next_u64() {
                matches += 1;
            }
        }
        assert_eq!(matches, 0);
    }

    #[test]
    fn chance_ppm_extremes_and_rate() {
        let mut r = Rng::new(3);
        assert!(!(0..1000).any(|_| r.chance_ppm(0)));
        assert!((0..1000).all(|_| r.chance_ppm(1_000_000)));
        // 10% should land within a loose band over 100k trials.
        let hits = (0..100_000).filter(|_| r.chance_ppm(100_000)).count();
        assert!(hits > 8_000 && hits < 12_000, "hits={hits}");
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Rng::new(11);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[(r.next_u64() >> 60) as usize] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
