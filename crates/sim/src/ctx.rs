//! Per-thread execution context: the handle simulated code uses to charge
//! virtual time, block, sleep, and spawn further simulated threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AO};
use std::sync::Arc;

use crate::sched::{Action, SimInner, SimStats, ThreadId};
use crate::sync::WaitCell;
use crate::time::VTime;

/// Execution context of one simulated thread. `Ctx` is handed to the
/// thread's closure and is deliberately `!Sync`: each simulated thread owns
/// exactly one.
pub struct Ctx {
    pub(crate) inner: Arc<SimInner>,
    pub(crate) tid: ThreadId,
    clock: Arc<AtomicU64>,
    runahead: VTime,
    quantum: VTime,
}

impl Ctx {
    pub(crate) fn new_root(inner: Arc<SimInner>) -> Self {
        let clock = inner.sched.lock().clock_handle(0);
        let quantum = inner.cfg.quantum;
        Self {
            inner,
            tid: 0,
            clock,
            runahead: 0,
            quantum,
        }
    }

    fn new_child(inner: Arc<SimInner>, tid: ThreadId) -> Self {
        let clock = inner.sched.lock().clock_handle(tid);
        let quantum = inner.cfg.quantum;
        Self {
            inner,
            tid,
            clock,
            runahead: 0,
            quantum,
        }
    }

    /// This thread's identifier.
    #[inline]
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Current virtual time of this thread, in nanoseconds.
    #[inline]
    pub fn now(&self) -> VTime {
        self.clock.load(AO::Relaxed)
    }

    /// Account `ns` nanoseconds of virtual work. This is the hot path of the
    /// whole simulator: a relaxed add plus a branch. Crossing the run-ahead
    /// quantum triggers a cooperative yield so other (virtually earlier)
    /// threads and events catch up.
    #[inline]
    pub fn charge(&mut self, ns: VTime) {
        self.clock.fetch_add(ns, AO::Relaxed);
        self.runahead += ns;
        if self.runahead >= self.quantum {
            self.runahead = 0;
            self.yield_now();
        }
    }

    /// Raise this thread's clock to at least `t` (used when consuming a
    /// message delivered at `t`).
    #[inline]
    pub(crate) fn bump(&mut self, t: VTime) {
        self.clock.fetch_max(t, AO::Relaxed);
    }

    /// Cooperatively yield the token; resumes once this thread again has the
    /// smallest virtual clock.
    pub fn yield_now(&mut self) {
        {
            let mut s = self.inner.sched.lock();
            s.make_runnable_self(self.tid);
        }
        self.inner.reschedule(self.tid);
        self.inner.check_poison(self.tid);
    }

    /// Charge `ns` and yield: the building block for simulated spin loops
    /// (e.g. waiting on `delay_flag` in the DArray fast path).
    #[inline]
    pub fn spin_hint(&mut self, ns: VTime) {
        self.clock.fetch_add(ns, AO::Relaxed);
        self.yield_now();
    }

    /// Sleep until virtual time `deadline`.
    pub fn sleep_until(&mut self, deadline: VTime) {
        if deadline <= self.now() {
            return;
        }
        {
            let mut s = self.inner.sched.lock();
            s.push_event(deadline, Action::Wake(self.tid));
            s.set_blocked(self.tid);
        }
        self.inner.reschedule(self.tid);
        self.inner.check_poison(self.tid);
    }

    /// Sleep for `ns` nanoseconds of virtual time.
    pub fn sleep(&mut self, ns: VTime) {
        let d = self.now() + ns;
        self.sleep_until(d);
    }

    /// Block the calling thread. The caller must have registered itself with
    /// whatever will eventually call `SchedState::wake` for it (mailbox,
    /// wait cell, barrier). Returns once woken; the clock has been advanced
    /// to the wake time by the waker.
    pub(crate) fn block(&mut self) {
        {
            let mut s = self.inner.sched.lock();
            s.set_blocked(self.tid);
        }
        self.inner.reschedule(self.tid);
        self.inner.check_poison(self.tid);
    }

    /// Schedule `action` at absolute virtual time `at` (scheduler-context
    /// closure; used by the fabric to deliver messages and perform one-sided
    /// memory copies).
    pub(crate) fn schedule(
        &self,
        at: VTime,
        action: Box<dyn FnOnce(&mut crate::sched::SchedState) + Send>,
    ) {
        let mut s = self.inner.sched.lock();
        s.push_event(at, Action::Call(action));
    }

    /// Schedule an arbitrary side effect at absolute virtual time `at`
    /// (e.g. the fabric's one-sided RDMA memory copies). Side effects
    /// scheduled at equal times run in scheduling order, and always before
    /// any message delivered at a later time.
    pub fn schedule_fn<F>(&self, at: VTime, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.schedule(at, Box::new(move |_s| f()));
    }

    /// Spawn a simulated thread named `name` whose clock starts at the
    /// spawner's current virtual time.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> JoinHandle
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        let start = self.now();
        let tid = {
            let mut s = self.inner.sched.lock();
            s.spawn_runnable(name.to_string(), start)
        };
        let parker = {
            let s = self.inner.sched.lock();
            s.parker_handle(tid)
        };
        let inner = self.inner.clone();
        let done = Arc::new(AtomicBool::new(false));
        let end_time = Arc::new(AtomicU64::new(0));
        let cell = WaitCell::new();
        let h_done = done.clone();
        let h_end = end_time.clone();
        let h_cell = cell.clone();
        std::thread::Builder::new()
            .name(format!("dsim-{name}"))
            .spawn(move || {
                // Wait for the first dispatch.
                parker.park();
                let mut ctx = Ctx::new_child(inner.clone(), tid);
                let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                if let Err(p) = result {
                    let msg = panic_message(&*p);
                    inner.record_panic(msg);
                }
                h_end.store(ctx.now(), AO::Release);
                h_done.store(true, AO::Release);
                h_cell.notify(&mut ctx);
                inner.retire(tid);
            })
            .expect("spawn OS thread for simulated thread");
        JoinHandle {
            cell,
            done,
            end_time,
        }
    }

    /// Snapshot of scheduler counters.
    pub fn stats(&self) -> SimStats {
        self.inner.sched.lock().stats_snapshot()
    }

    /// The configured run-ahead quantum.
    pub fn quantum(&self) -> VTime {
        self.quantum
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Handle for joining a simulated thread. Joining advances the joiner's
/// clock to the joined thread's final virtual time.
pub struct JoinHandle {
    cell: WaitCell,
    done: Arc<AtomicBool>,
    end_time: Arc<AtomicU64>,
}

impl JoinHandle {
    /// Block until the thread finishes.
    pub fn join(self, ctx: &mut Ctx) {
        while !self.done.load(AO::Acquire) {
            self.cell.wait(ctx);
        }
        ctx.bump(self.end_time.load(AO::Acquire));
    }

    /// Non-blocking check.
    pub fn is_finished(&self) -> bool {
        self.done.load(AO::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Sim, SimConfig};

    #[test]
    fn spin_hint_makes_progress() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let f2 = flag.clone();
            let h = ctx.spawn("setter", move |c| {
                c.sleep(5_000);
                f2.store(true, std::sync::atomic::Ordering::Release);
            });
            while !flag.load(std::sync::atomic::Ordering::Acquire) {
                ctx.spin_hint(100);
            }
            assert!(ctx.now() >= 5_000);
            h.join(ctx);
        });
    }

    #[test]
    fn join_after_completion_still_syncs_clock() {
        Sim::new(SimConfig::default()).run(|ctx| {
            let h = ctx.spawn("fast", |c| c.charge(2_000));
            // Let the child finish first.
            ctx.sleep(10_000);
            assert!(h.is_finished());
            h.join(ctx);
            assert_eq!(ctx.now(), 10_000); // joiner was already later
        });
    }

    #[test]
    fn nested_spawn_works() {
        let v = Sim::new(SimConfig::default()).run(|ctx| {
            let h = ctx.spawn("outer", |c| {
                let inner = c.spawn("inner", |c2| c2.charge(500));
                inner.join(c);
            });
            h.join(ctx);
            ctx.now()
        });
        assert_eq!(v, 500);
    }
}
