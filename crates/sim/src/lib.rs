//! # dsim — deterministic virtual-time discrete-event executor
//!
//! `dsim` is the substrate under the whole DArray reproduction. It runs a
//! *simulated cluster* inside one process: every simulated thread
//! (application thread, runtime thread, NIC agent) is a real OS thread, but
//! only **one of them executes at any instant**. A single-token scheduler
//! hands control to the runnable thread with the smallest *virtual clock*,
//! and all latencies (network propagation, CPU costs, lock hold times) are
//! charged in virtual nanoseconds.
//!
//! Because scheduling decisions depend only on virtual clocks — and those
//! are produced deterministically by the program itself — a `dsim` run is
//! **bit-for-bit reproducible**, which is what lets the benchmark harness
//! regenerate every figure of the paper deterministically on a one-core
//! machine.
//!
//! ## Execution model
//!
//! * A simulated thread runs *natively* (direct execution) and calls
//!   [`Ctx::charge`] to account for the virtual cost of the work it just
//!   performed. Pure computation therefore costs one `u64` add per charge.
//! * Interaction points — [`Mailbox::recv`], [`WaitCell::wait`],
//!   [`Ctx::sleep`], [`SimBarrier::wait`], [`Ctx::yield_now`] — synchronize
//!   with the global event queue. Message sends schedule *delivery events*
//!   at a future virtual time.
//! * A thread may run ahead of the global virtual time between interaction
//!   points (lax synchronization, in the style of the Graphite simulator);
//!   the run-ahead is bounded by a configurable quantum after which the
//!   thread voluntarily yields.
//!
//! ## Example
//!
//! ```
//! use dsim::{Sim, SimConfig, Mailbox};
//!
//! let total = Sim::new(SimConfig::default()).run(|ctx| {
//!     let mb: Mailbox<u64> = Mailbox::new("demo");
//!     let tx = mb.clone();
//!     let child = ctx.spawn("producer", move |ctx| {
//!         for i in 0..4 {
//!             ctx.charge(100); // 100 ns of "work"
//!             tx.send(ctx, i, 1_000); // 1 µs propagation delay
//!         }
//!     });
//!     let mut sum = 0;
//!     for _ in 0..4 {
//!         sum += mb.recv(ctx);
//!     }
//!     child.join(ctx);
//!     assert!(ctx.now() >= 1_000);
//!     sum
//! });
//! assert_eq!(total, 0 + 1 + 2 + 3);
//! ```

mod ctx;
mod mailbox;
mod rng;
mod sched;
mod sync;
mod time;

pub use ctx::{Ctx, JoinHandle};
pub use mailbox::Mailbox;
pub use rng::Rng;
pub use sched::{Sim, SimConfig, SimStats, ThreadId};
pub use sync::{SimBarrier, VirtualLock, WaitCell};
pub use time::{to_secs, VTime, MICROSECOND, MILLISECOND, SECOND};
