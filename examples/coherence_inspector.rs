//! A tour of the extended cache coherence protocol (§4.4): drive one chunk
//! through Unshared → Shared → Dirty → Operated → Unshared and print the
//! runtime/NIC statistics showing each transition's traffic.
//!
//! Run with: `cargo run --release --example coherence_inspector`

use darray::{table1_rows, ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};

fn main() {
    // Table 1, straight from the protocol implementation.
    println!("protocol states (Table 1):");
    for r in table1_rows() {
        println!(
            "  {:<9} home={:<6} others={:<5} exclusive={}",
            r.state,
            r.home.to_string(),
            r.others.to_string(),
            if r.exclusive { "yes" } else { "no" }
        );
    }
    println!();

    Sim::new(SimConfig::default()).run(|ctx| {
        let cluster = Cluster::new(ctx, ClusterConfig::with_nodes(3));
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(3 * 512, ArrayOptions::default());
        let snap = |cluster: &Cluster, tag: &str| {
            let mut line = format!("{tag:<28}");
            for n in 0..3 {
                let s = cluster.stats(n);
                let nic = cluster.nic_stats(n);
                line += &format!(
                    " | n{n}: fills={:<2} inval={:<2} wb={:<2} flush={:<2} sends={:<3}",
                    s.fills, s.invalidations, s.writebacks, s.operand_flushes, nic.sends
                );
            }
            println!("{line}");
        };

        // Element 0 lives in chunk 0, homed on node 0 (Unshared initially).
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Phase 1: everyone reads -> Shared everywhere.
            let _ = a.get(ctx, 0);
            env.barrier(ctx);
            // Phase 2: node 2 writes -> invalidations, then Dirty at node 2.
            if env.node == 2 {
                a.set(ctx, 0, 99);
            }
            env.barrier(ctx);
            // Phase 3: everyone applies -> recall of the dirty copy, then
            // the Operated state with local combining on all three nodes.
            a.apply(ctx, 0, add, 1);
            env.barrier(ctx);
            // Phase 4: node 1 reads -> operand flushes + reduction at home,
            // back to Unshared/Shared; the value is 99 + 3.
            if env.node == 1 {
                assert_eq!(a.get(ctx, 0), 102);
            }
        });
        snap(&cluster, "after full protocol tour:");
        println!("\n(The Shared->Dirty write invalidated two sharers; the apply recalled the\n dirty copy; the final read recalled three Operated copies and reduced them.)");
        cluster.shutdown(ctx);
    });
}
