//! The distributed key-value store of §5.2 on a 4-node DArray cluster:
//! puts/gets/deletes from every node, then a short YCSB burst with
//! throughput reporting.
//!
//! Run with: `cargo run --release --example kv_store`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use darray::{ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};
use darray_kvs::{DArrayBackend, Kvs, KvsConfig};
use workloads::{YcsbOp, YcsbSpec, YcsbStream};

fn main() {
    let nodes = 4;
    let cfg = KvsConfig {
        buckets: 256,
        overflow_per_node: 32,
        value_capacity: 8 << 20,
        nodes,
    };
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, ClusterConfig::with_nodes(nodes));
        let entries = cluster.alloc::<u64>(cfg.entry_array_len(), ArrayOptions::default());
        let bytes = cluster.alloc::<u64>(cfg.byte_array_words(), ArrayOptions::default());
        let kvs = Kvs::new(cfg);
        let total_ops = Arc::new(AtomicU64::new(0));
        let window = Arc::new(AtomicU64::new(0));
        let (t2, w2) = (total_ops.clone(), window.clone());
        cluster.run(ctx, 2, move |ctx, env| {
            let kv = kvs.view(
                env.node,
                DArrayBackend(entries.on(env.node)),
                DArrayBackend(bytes.on(env.node)),
            );
            // Basic usage from every node.
            if env.thread == 0 {
                let key = format!("greeting-{}", env.node);
                kv.put(ctx, key.as_bytes(), b"hello from afar").unwrap();
            }
            env.barrier(ctx);
            if env.thread == 0 {
                for n in 0..env.nodes {
                    let key = format!("greeting-{n}");
                    let v = kv.get(ctx, key.as_bytes()).expect("present");
                    assert_eq!(v, b"hello from afar");
                }
            }
            if env.node == 0 && env.thread == 0 {
                // Updates and deletes work too.
                kv.put(ctx, b"tmp", b"v1").unwrap();
                kv.put(ctx, b"tmp", b"v2").unwrap();
                assert_eq!(kv.get(ctx, b"tmp"), Some(b"v2".to_vec()));
                assert!(kv.delete(ctx, b"tmp"));
            }
            env.barrier(ctx);

            // A short YCSB burst (95 % gets, Zipf 0.99).
            let spec = YcsbSpec {
                records: 1_000,
                get_ratio: 0.95,
                theta: 0.99,
                value_size: 100,
                distribution: workloads::RequestDistribution::Zipfian,
            };
            for k in 0..spec.records {
                if k as usize % env.nodes == env.node && env.thread == 0 {
                    kv.put(ctx, &k.to_le_bytes(), &YcsbStream::value_for(k, 0, 100))
                        .unwrap();
                }
            }
            env.barrier(ctx);
            let mut stream = YcsbStream::new(spec, (env.node * 8 + env.thread) as u64);
            let t0 = ctx.now();
            let ops = 2_000u64;
            for v in 0..ops {
                match stream.next_op() {
                    YcsbOp::Get(k) => {
                        std::hint::black_box(kv.get(ctx, &k.to_le_bytes()));
                    }
                    YcsbOp::Put(k) => {
                        kv.put(ctx, &k.to_le_bytes(), &YcsbStream::value_for(k, v, 100))
                            .unwrap();
                    }
                }
            }
            t2.fetch_add(ops, Ordering::Relaxed);
            w2.fetch_max(ctx.now() - t0, Ordering::Relaxed);
        });
        let ops = total_ops.load(Ordering::Relaxed);
        let ns = window.load(Ordering::Relaxed);
        println!(
            "YCSB (95% get, zipf 0.99): {ops} ops over {nodes} nodes x 2 threads in {:.3} ms \
             (virtual) = {:.0} Kops/s",
            ns as f64 / 1e6,
            ops as f64 / (ns as f64 / 1e9) / 1e3
        );
        cluster.shutdown(ctx);
        println!("kv_store OK");
    });
}
