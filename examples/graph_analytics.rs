//! Graph analytics on DArray (§5.1): run PageRank and Connected Components
//! on an R-MAT graph across a simulated 4-node cluster, in the plain and
//! Pin-optimized variants, and compare against the Gemini-style
//! message-passing engine.
//!
//! Run with: `cargo run --release --example graph_analytics`

use darray::{Cluster, ClusterConfig, Sim, SimConfig};
use darray_graph::cc::cc_darray;
use darray_graph::gemini::pagerank_gemini;
use darray_graph::pagerank::pagerank_darray;
use darray_graph::reference::pagerank_ref;
use darray_graph::rmat;
use rdma_fabric::NetConfig;

fn main() {
    let scale = 12;
    let el = rmat(scale, 4, 7);
    let iters = 5;
    let nodes = 4;
    println!(
        "rMat{scale}: {} vertices, {} edges; {} PageRank iterations on {nodes} nodes\n",
        el.vertices,
        el.edges.len(),
        iters
    );

    // DArray engine, plain and Pin.
    let el2 = el.clone();
    let (plain, pinned, cc) = Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, ClusterConfig::with_nodes(nodes));
        let plain = pagerank_darray(ctx, &cluster, &el2, iters, false);
        let pinned = pagerank_darray(ctx, &cluster, &el2, iters, true);
        let cc = cc_darray(ctx, &cluster, &el2, true);
        cluster.shutdown(ctx);
        (plain, pinned, cc)
    });

    // Gemini baseline.
    let el3 = el.clone();
    let gem = Sim::new(SimConfig::default())
        .run(move |ctx| pagerank_gemini(ctx, &el3, nodes, iters, NetConfig::default()));

    println!("PageRank virtual running time:");
    println!("  DArray      {:>10.3} ms", plain.elapsed as f64 / 1e6);
    println!("  DArray-Pin  {:>10.3} ms", pinned.elapsed as f64 / 1e6);
    println!("  Gemini      {:>10.3} ms", gem.elapsed as f64 / 1e6);

    // All engines agree with the sequential reference.
    let want = pagerank_ref(&el, iters);
    for (name, got) in [
        ("DArray", &plain.ranks),
        ("DArray-Pin", &pinned.ranks),
        ("Gemini", &gem.ranks),
    ] {
        let max_err = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("  {name}: max |err| vs reference = {max_err:.2e}");
        assert!(max_err < 1e-9);
    }

    // Top-5 ranked vertices.
    let mut idx: Vec<usize> = (0..want.len()).collect();
    idx.sort_by(|&a, &b| want[b].partial_cmp(&want[a]).unwrap());
    println!("\ntop-5 vertices by rank: {:?}", &idx[..5]);

    println!(
        "\nConnected Components: {} rounds, {:.3} ms (virtual), {} components",
        cc.rounds,
        cc.elapsed as f64 / 1e6,
        {
            let mut labels = cc.values.clone();
            labels.sort_unstable();
            labels.dedup();
            labels.len()
        }
    );
}
