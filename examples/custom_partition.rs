//! Custom partitioning (the constructor's `partition_offset` argument,
//! §3.2): place data where the work is.
//!
//! An R-MAT graph concentrates high-degree vertices at low ids, so an even
//! vertex split leaves node 0 with most of the edges. This example builds
//! the vertex arrays twice — even vs. edge-balanced custom partition — and
//! shows both the ownership layout and the PageRank running-time
//! difference.
//!
//! Run with: `cargo run --release --example custom_partition`

use darray::{Cluster, ClusterConfig, Sim, SimConfig};
use darray_graph::local::LocalGraph;
use darray_graph::pagerank::pagerank_darray;
use darray_graph::rmat;

fn main() {
    let nodes = 4;
    let el = rmat(13, 8, 9);
    println!(
        "rMat13 with edge factor 8: {} vertices, {} edges\n",
        el.vertices,
        el.edges.len()
    );

    // Show the imbalance an even split would produce...
    let even = LocalGraph::partition(&el, nodes);
    println!("even vertex partition (what you get without partition_offset):");
    for (n, p) in even.iter().enumerate() {
        println!(
            "  node {n}: vertices {:>6}..{:<6}  edges {:>7}",
            p.owned.start,
            p.owned.end,
            p.local_edges()
        );
    }

    // ...and the balanced one (chunk-aligned offsets fed to the array
    // constructor).
    let (balanced, offsets) = LocalGraph::partition_balanced(&el, nodes);
    println!("\nedge-balanced partition (partition_offset = {offsets:?}):");
    for (n, p) in balanced.iter().enumerate() {
        println!(
            "  node {n}: vertices {:>6}..{:<6}  edges {:>7}",
            p.owned.start,
            p.owned.end,
            p.local_edges()
        );
    }

    // The engine uses the balanced layout internally; the virtual running
    // time reflects the straggler effect the custom partition removes.
    let t = Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, ClusterConfig::with_nodes(nodes));
        let r = pagerank_darray(ctx, &cluster, &el, 3, true);
        cluster.shutdown(ctx);
        r.elapsed
    });
    println!(
        "\nPageRank (3 iterations, 4 nodes, DArray-Pin, balanced partition): {:.3} ms virtual",
        t as f64 / 1e6
    );
}
