//! Fault injection: boot a cluster whose fabric randomly delays, stalls,
//! and drops verbs, watch the reliable channel recover, replay the exact
//! run from its seed, and survive a node crash with a structured error.
//!
//! Run with: `cargo run --release --example fault_injection`

use darray::{
    ArrayOptions, Cluster, ClusterConfig, DArrayError, FaultConfig, FaultPlan, NodeStatsSnapshot,
    Sim, SimConfig, VTime,
};

/// Run a small all-to-all workload under the given fault plan; return each
/// node's final statistics and the final virtual time.
fn run_under_faults(seed: u64) -> (Vec<NodeStatsSnapshot>, VTime) {
    let mut plan = FaultPlan::new(seed);
    plan.jitter_ns = 500; // up to 0.5 us extra serialization per verb
    plan.drop_ppm = 25_000; // 2.5% of SENDs vanish
    plan.stall_ppm = 1_500; // occasional NIC stall...
    plan.stall_ns = (5_000, 20_000); // ...of 5-20 us

    let mut cfg = ClusterConfig::with_nodes(3);
    cfg.fault = Some(FaultConfig::new(plan));
    cfg.try_validate().expect("fault config should be valid");

    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(64 * 1024, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Touch one element in each of 128 chunks — mostly remote, so
            // every miss is a coherence RPC that may be dropped — and take
            // a few distributed locks (more SEND traffic to lose).
            let chunk = 512;
            for i in 0..128 {
                let idx = i * chunk + env.node;
                a.set(ctx, idx, (env.node * 1000 + i) as u64);
            }
            for i in 0..32 {
                let idx = i * 4 * chunk + 100;
                a.wlock(ctx, idx);
                let v = a.get(ctx, idx);
                a.set(ctx, idx, v + 1);
                a.unlock(ctx, idx);
            }
            env.barrier(ctx);
            let next = (env.node + 1) % env.nodes;
            for i in 0..128 {
                assert_eq!(a.get(ctx, i * chunk + next), (next * 1000 + i) as u64);
            }
        });
        let snaps = (0..3).map(|n| cluster.stats(n)).collect();
        let t = ctx.now();
        cluster.shutdown(ctx);
        (snaps, t)
    })
}

fn main() {
    // --- Recovery under a lossy fabric --------------------------------
    let (snaps, t1) = run_under_faults(0xFEED);
    let mut retransmits = 0;
    let mut timeouts = 0;
    let mut dups = 0;
    for (n, s) in snaps.iter().enumerate() {
        println!(
            "node {n}: rpc_timeouts {:4}  retransmits {:4}  dup_rpcs {:4}  peers_down {}",
            s.rpc_timeouts, s.retransmits, s.dup_rpcs, s.peers_down
        );
        retransmits += s.retransmits;
        timeouts += s.rpc_timeouts;
        dups += s.dup_rpcs;
    }
    assert!(
        retransmits > 0,
        "a 2.5% drop rate must force retransmissions"
    );
    println!("workload completed correctly despite {retransmits} retransmits ({dups} duplicates suppressed, {timeouts} timeouts)");

    // --- Deterministic replay ------------------------------------------
    let (snaps2, t2) = run_under_faults(0xFEED);
    assert_eq!(snaps, snaps2, "same seed must replay bit-identically");
    assert_eq!(t1, t2);
    println!("seed 0xFEED replayed bit-identically (final virtual time {t1} ns)");
    let (_, t3) = run_under_faults(0xBEEF);
    assert_ne!(t1, t3, "a different seed should change the schedule");
    println!("seed 0xBEEF diverged as expected ({t3} ns)");

    // --- Config validation ---------------------------------------------
    let mut bad = ClusterConfig::with_nodes(2);
    bad.net.bytes_per_us = 0;
    println!("validation: {}", bad.try_validate().unwrap_err());

    // --- Crash detection and graceful degradation ----------------------
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(7);
        plan.crash_at = vec![(1, 1_000_000)]; // node 1 halts at t = 1 ms
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(2);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(8192, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 0 {
                ctx.sleep(2_000_000); // wait past the crash
                match a.try_set(ctx, 7000, 1) {
                    Err(DArrayError::NodeUnavailable { node, epoch, kind }) => {
                        println!(
                            "crash: write to chunk homed on node {node} failed over cleanly \
                             ({kind:?} at membership epoch {epoch})"
                        );
                    }
                    other => panic!("expected NodeUnavailable, got {other:?}"),
                }
                // The local partition keeps working.
                a.set(ctx, 10, 3);
                assert_eq!(a.get(ctx, 10), 3);
                println!("crash: local data still served (graceful degradation)");
            }
        });
        let s0 = cluster.stats(0);
        assert_eq!(s0.peers_down, 1);
        cluster.shutdown(ctx);
    });

    println!("fault_injection OK");
}
