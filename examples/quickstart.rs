//! Quickstart: boot a 4-node DArray cluster, exercise every API of
//! Figure 3 — get/set, distributed locks, registerOp/apply (Operate), and
//! pin/unpin — and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use darray::{ArrayOptions, Cluster, ClusterConfig, PinMode, Sim, SimConfig};

fn main() {
    Sim::new(SimConfig::default()).run(|ctx| {
        // A 4-node cluster over the simulated 100 Gbps RDMA fabric.
        let cluster = Cluster::new(ctx, ClusterConfig::with_nodes(4));

        // registerOp: an associative+commutative operator (Figure 3 line 8).
        let add = cluster.ops().register_add_u64();

        // The constructor (Figure 3 line 2): a global array of 64 Ki
        // elements, evenly partitioned across the nodes.
        let arr = cluster.alloc::<u64>(64 * 1024, ArrayOptions::default());

        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);

            // --- Read/Write API -----------------------------------------
            // Each node writes a marker into its own partition...
            let mine = a.local_range().start;
            a.set(ctx, mine, 1000 + env.node as u64);
            env.barrier(ctx);
            // ...and reads every other node's marker through the cache.
            for n in 0..env.nodes {
                let their_start = (a.len() / env.nodes) * n;
                let v = a.get(ctx, their_start);
                assert_eq!(v, 1000 + n as u64);
            }

            // --- Operate API --------------------------------------------
            // Every node increments the same counters concurrently; the
            // Operated state combines the additions locally and reduces
            // them at the home node — no ownership ping-pong.
            for i in 0..512 {
                a.apply(ctx, i, add, 1);
            }
            env.barrier(ctx);
            // Node 0 wrote 1000 at index 0 (its partition start), then all
            // nodes added 1 each.
            assert_eq!(a.get(ctx, 0), 1000 + env.nodes as u64);

            // --- Concurrency control ------------------------------------
            let slot = a.len() - 1;
            a.wlock(ctx, slot);
            let v = a.get(ctx, slot);
            a.set(ctx, slot, v + 10);
            a.unlock(ctx, slot);
            env.barrier(ctx);
            assert_eq!(a.get(ctx, slot), 40);

            // --- Pin hint ------------------------------------------------
            // Sequential scan of a pinned chunk skips the per-access
            // atomics entirely.
            let t0 = ctx.now();
            let pin = a.pin(ctx, 1024, PinMode::Read);
            let mut sum = 0u64;
            for i in pin.range() {
                sum += pin.get(ctx, i);
            }
            pin.unpin();
            let pinned_ns = ctx.now() - t0;
            env.barrier(ctx);

            if env.node == 0 {
                println!("node 0: pinned 512-element scan took {pinned_ns} ns (virtual)");
                println!("node 0: checksum of pinned chunk = {sum}");
            }
        });

        // Runtime statistics show the protocol at work.
        for n in 0..4 {
            let s = cluster.stats(n);
            println!(
                "node {n}: fast hits {:>6}  misses {:>4}  fills {:>4}  evictions {:>3}  combines {:>5}",
                s.fast_hits, s.slow_misses, s.fills, s.evictions, s.local_combines
            );
        }
        cluster.shutdown(ctx);
        println!("quickstart OK");
    });
}
