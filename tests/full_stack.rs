//! Full-stack integration: the KVS and the graph engine co-resident in one
//! cluster, and bit-for-bit determinism of the entire stack.

use darray::{ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};
use darray_graph::pagerank::pagerank_darray;
use darray_graph::reference::pagerank_ref;
use darray_graph::rmat;
use darray_kvs::{DArrayBackend, Kvs, KvsConfig};

#[test]
fn kvs_and_graph_share_a_cluster() {
    let el = rmat(9, 4, 3);
    let want = pagerank_ref(&el, 2);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, ClusterConfig::test_config(3));

        // A KVS lives in the cluster...
        let kcfg = KvsConfig {
            buckets: 64,
            overflow_per_node: 8,
            value_capacity: 1 << 20,
            nodes: 3,
        };
        let entries = cluster.alloc::<u64>(kcfg.entry_array_len(), ArrayOptions::default());
        let bytes = cluster.alloc::<u64>(kcfg.byte_array_words(), ArrayOptions::default());
        let kvs = Kvs::new(kcfg);
        cluster.run(ctx, 1, move |ctx, env| {
            let kv = kvs.view(
                env.node,
                DArrayBackend(entries.on(env.node)),
                DArrayBackend(bytes.on(env.node)),
            );
            let key = format!("node-{}", env.node);
            kv.put(ctx, key.as_bytes(), b"alive").unwrap();
            env.barrier(ctx);
            for n in 0..env.nodes {
                assert_eq!(
                    kv.get(ctx, format!("node-{n}").as_bytes()),
                    Some(b"alive".to_vec())
                );
            }
        });

        // ...and PageRank runs over additional arrays in the same cluster.
        let pr = pagerank_darray(ctx, &cluster, &el, 2, true);
        for (a, b) in pr.ranks.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
        cluster.shutdown(ctx);
    });
}

#[test]
fn whole_stack_is_deterministic() {
    fn once() -> (u64, Vec<u64>) {
        let el = rmat(8, 4, 9);
        Sim::new(SimConfig::default()).run(move |ctx| {
            let cluster = Cluster::new(ctx, ClusterConfig::with_nodes(2));
            let pr = pagerank_darray(ctx, &cluster, &el, 2, false);
            let stats: Vec<u64> = (0..2)
                .flat_map(|n| {
                    let s = cluster.stats(n);
                    let nic = cluster.nic_stats(n);
                    vec![
                        s.fills,
                        s.slow_misses,
                        s.operand_flushes,
                        nic.sends,
                        nic.send_bytes,
                    ]
                })
                .collect();
            cluster.shutdown(ctx);
            (pr.elapsed, stats)
        })
    }
    let a = once();
    let b = once();
    assert_eq!(a, b, "virtual time and every protocol counter must match");
}
