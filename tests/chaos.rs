//! Chaos suite (gated behind the `chaos` feature): randomized fault
//! schedules must never change *what* the cluster computes, only *when*.
//!
//! A mixed workload — writer-disjoint `set`s, `wlock`-protected
//! read-modify-writes, and commutative `apply`s — has a timing-independent
//! final state, so its contents under any fault schedule must match the
//! fault-free run bit for bit. Run with:
//!
//! ```text
//! cargo test --features chaos --test chaos
//! ```
#![cfg(feature = "chaos")]

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use darray::{
    ArrayOptions, AsymmetricLoss, Cluster, ClusterConfig, DArrayError, DurabilityPolicy,
    FaultConfig, FaultPlan, NodeStatsSnapshot, Partition, Sim, SimConfig, UnavailableKind,
};

const LEN: usize = 3072;
const NODES: usize = 3;

/// Run the mixed workload; return the final contents plus every node's
/// statistics snapshot.
fn run_workload(cfg: ClusterConfig) -> (Vec<u64>, Vec<NodeStatsSnapshot>) {
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        let contents = Arc::new(Mutex::new(Vec::new()));
        let out = contents.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let n = env.node;
            // Writer-disjoint sets: every index is written by exactly one
            // (node, k) pair, so the final value is timing-independent.
            for k in 0..96 {
                let idx = k * NODES + n;
                a.set(ctx, idx, (n * 10_000 + k) as u64);
            }
            // Lock-protected increments of shared hot elements: increments
            // commute, so only the count matters.
            for k in 0..12 {
                let idx = LEN - 1 - (k % 4);
                a.wlock(ctx, idx);
                let v = a.get(ctx, idx);
                a.set(ctx, idx, v + 1);
                a.unlock(ctx, idx);
            }
            // Commutative applies on a contended range.
            for k in 0..64 {
                a.apply(ctx, LEN / 2 + k, add, (n + 1) as u64);
            }
            env.barrier(ctx);
            if n == 0 {
                let mut v = Vec::with_capacity(LEN);
                for i in 0..LEN {
                    v.push(a.get(ctx, i));
                }
                *out.lock().unwrap() = v;
            }
            env.barrier(ctx);
        });
        let snaps = (0..NODES).map(|n| cluster.stats(n)).collect();
        cluster.shutdown(ctx);
        let v = contents.lock().unwrap().clone();
        (v, snaps)
    })
}

fn chaotic_config(seed: u64) -> ClusterConfig {
    let mut plan = FaultPlan::new(seed);
    plan.jitter_ns = 600;
    plan.drop_ppm = 30_000;
    plan.stall_ppm = 2_000;
    plan.stall_ns = (5_000, 25_000);
    let mut cfg = ClusterConfig::with_nodes(NODES);
    cfg.fault = Some(FaultConfig::new(plan));
    cfg
}

/// The expected final contents, independent of faults and timing.
fn expected_contents() -> Vec<u64> {
    let mut v = vec![0u64; LEN];
    for n in 0..NODES {
        for k in 0..96 {
            v[k * NODES + n] = (n * 10_000 + k) as u64;
        }
    }
    for e in v.iter_mut().skip(LEN - 4).take(4) {
        *e += (NODES * 3) as u64; // 12 increments cycling over 4 elements
    }
    for e in v.iter_mut().skip(LEN / 2).take(64) {
        *e += (1 + 2 + 3) as u64; // Σ (n+1) over the 3 nodes
    }
    v
}

#[test]
fn chaos_matches_fault_free_baseline_across_seeds() {
    let baseline = {
        let (contents, snaps) = run_workload(ClusterConfig::with_nodes(NODES));
        let timeouts: u64 = snaps.iter().map(|s| s.rpc_timeouts).sum();
        let retransmits: u64 = snaps.iter().map(|s| s.retransmits).sum();
        let dups: u64 = snaps.iter().map(|s| s.dup_rpcs).sum();
        assert_eq!(
            (timeouts, retransmits, dups),
            (0, 0, 0),
            "fault-free run must not exercise the reliability machinery"
        );
        assert_eq!(contents, expected_contents());
        contents
    };
    for seed in [3, 5, 11, 17, 23, 31, 47, 0xC0FFEE] {
        let (contents, snaps) = run_workload(chaotic_config(seed));
        let timeouts: u64 = snaps.iter().map(|s| s.rpc_timeouts).sum();
        let retransmits: u64 = snaps.iter().map(|s| s.retransmits).sum();
        assert_eq!(
            contents, baseline,
            "final contents diverged from the fault-free run under seed {seed}"
        );
        assert!(
            timeouts > 0 && retransmits > 0,
            "seed {seed} injected no observable faults (timeouts={timeouts}, \
             retransmits={retransmits}); the schedule is too tame to test recovery"
        );
        let confirmed: u64 = snaps.iter().map(|s| s.confirmed_deaths).sum();
        assert_eq!(
            confirmed, 0,
            "seed {seed}: packet loss alone must never confirm a death"
        );
    }
}

/// The multi-threaded runtime default must not weaken the chaos guarantee:
/// with `runtime_threads = 2` the protocol work for each node partitions
/// across two executors, and a seed subset of the fault schedules must
/// still converge to the same timing-independent contents.
#[test]
fn chaos_seed_subset_matches_baseline_with_multithreaded_runtime() {
    let rt2 = |mut cfg: ClusterConfig| {
        cfg.runtime_threads = 2;
        cfg
    };
    let (baseline, snaps) = run_workload(rt2(ClusterConfig::with_nodes(NODES)));
    let timeouts: u64 = snaps.iter().map(|s| s.rpc_timeouts).sum();
    assert_eq!(timeouts, 0, "fault-free rt=2 run must not time out");
    assert_eq!(baseline, expected_contents());
    for seed in [5, 17, 0xC0FFEE] {
        let (contents, snaps) = run_workload(rt2(chaotic_config(seed)));
        let retransmits: u64 = snaps.iter().map(|s| s.retransmits).sum();
        assert_eq!(
            contents, baseline,
            "rt=2 contents diverged from the fault-free run under seed {seed}"
        );
        assert!(
            retransmits > 0,
            "seed {seed} injected no observable faults under rt=2"
        );
        let confirmed: u64 = snaps.iter().map(|s| s.confirmed_deaths).sum();
        assert_eq!(
            confirmed, 0,
            "seed {seed}: packet loss alone must never confirm a death (rt=2)"
        );
    }
}

/// One chaos seed over the async TCP pump. Injected faults cannot be
/// imposed on OS sockets (validation rejects non-benign plans over TCP),
/// so the plan is benign — but `cfg.fault = Some(..)` still arms the
/// whole reliability channel (sequence numbers, timeout/retransmit
/// machinery, dedup), which now rides the event-loop pump's egress rings.
/// The mixed workload must converge to the fault-free contents over real
/// sockets, without any confirmed death, and the doorbell batching must
/// actually engage.
#[cfg(feature = "tcp-transport")]
#[test]
fn chaos_workload_over_tcp_async_pump_matches_baseline() {
    let mut cfg = ClusterConfig::with_nodes(NODES);
    cfg.transport = darray::TransportKind::Tcp;
    cfg.fault = Some(FaultConfig::new(FaultPlan::new(41)));
    let (contents, snaps) = run_workload(cfg);
    assert_eq!(
        contents,
        expected_contents(),
        "contents diverged from the fault-free baseline over TCP"
    );
    let confirmed: u64 = snaps.iter().map(|s| s.confirmed_deaths).sum();
    assert_eq!(confirmed, 0, "a benign plan must never confirm a death");
    let batches: u64 = snaps.iter().map(|s| s.doorbell_batches).sum();
    let coalesced: u64 = snaps.iter().map(|s| s.frames_coalesced).sum();
    assert!(
        batches > 0 && coalesced > 0,
        "reliability traffic never exercised the egress-ring batching \
         (batches={batches}, coalesced={coalesced})"
    );
    for (node, s) in snaps.iter().enumerate() {
        assert_eq!(
            s.frames,
            s.tx_flushes + s.frames_coalesced,
            "node {node}: flush identity must hold over TCP"
        );
    }
}

#[test]
fn crash_is_detected_and_degrades_gracefully() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(7);
        plan.crash_at = vec![(1, 2_000_000)];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(2);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(8192, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 0 {
                // Pre-crash: a remote chunk homed on node 1 works normally
                // (and stays cached with Exclusive rights).
                a.set(ctx, 4096, 7);
                assert_eq!(a.get(ctx, 4096), 7);
                // Wait past the crash, then touch a chunk that was never
                // cached: the fill times out, retries, and fails over.
                ctx.sleep(3_000_000);
                // The error is stamped with the membership epoch of the
                // death declaration (first death => epoch 1) and records
                // that a quorum confirmed it, not a mere suspicion.
                assert_eq!(
                    a.try_set(ctx, 7000, 1),
                    Err(DArrayError::NodeUnavailable {
                        node: 1,
                        epoch: 1,
                        kind: UnavailableKind::ConfirmedDead,
                    })
                );
                // Locks homed on the dead node fail fast.
                assert_eq!(
                    a.try_wlock(ctx, 7000),
                    Err(DArrayError::NodeUnavailable {
                        node: 1,
                        epoch: 1,
                        kind: UnavailableKind::ConfirmedDead,
                    })
                );
                // Graceful degradation: local chunks and already-cached
                // remote chunks keep working.
                a.set(ctx, 10, 3);
                assert_eq!(a.get(ctx, 10), 3);
                assert_eq!(a.try_get(ctx, 4096), Ok(7));
            } else {
                // The "crashed" node's CPU is alive (fail-stop cuts only its
                // network); purely local work still succeeds.
                a.set(ctx, 5000, 5);
                assert_eq!(a.get(ctx, 5000), 5);
            }
        });
        let s0 = cluster.stats(0);
        assert!(s0.rpc_timeouts >= 1, "no timeout recorded: {s0:?}");
        assert!(
            s0.peers_down == 1,
            "node 0 should declare exactly node 1 down: {s0:?}"
        );
        cluster.shutdown(ctx);
    });
}

/// Kill a node in the middle of a PageRank-like workload: the crashed node
/// holds an Operate grant (its combined local operands die with it), the
/// home aborts the orphaned epoch on detection, and the survivors'
/// contributions all land. Blocking reads across the recall-from-a-corpse
/// path must complete (the dsim deadlock detector turns a hang into a
/// panic).
#[test]
fn kill_mid_operate_epoch_aborts_and_survivors_converge() {
    const ACC: usize = 4; // accumulator element, homed on node 0
    const FLAG: usize = 700; // completion flag, a different node-0 chunk
    const DEAD_CHUNK: usize = 2560; // homed on node 2, never cached pre-crash
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(11);
        plan.crash_at = vec![(2, 1_000_000)];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(NODES);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            match env.node {
                2 => {
                    // Rank contributions under an Operate grant; the node
                    // dies before any recall, so these combined operands are
                    // lost (fail-stop) and must NOT be required below.
                    for _ in 0..16 {
                        a.apply(ctx, ACC, add, 1);
                    }
                    ctx.sleep(2_000_000); // dead past this point
                }
                survivor => {
                    ctx.sleep(2_000_000);
                    if survivor == 0 {
                        // Forces the recall of the orphaned epoch while the
                        // home still believes node 2 is alive: the read
                        // blocks in AwaitFlushes until the recall times
                        // out, node 2 is declared down and the epoch
                        // aborts. This is the crash-mid-transient path.
                        let _ = a.get(ctx, ACC);
                    }
                    // An uncached chunk homed on the corpse: error, not hang.
                    assert!(matches!(
                        a.try_get(ctx, DEAD_CHUNK),
                        Err(DArrayError::NodeUnavailable {
                            node: 2,
                            kind: UnavailableKind::ConfirmedDead,
                            ..
                        })
                    ));
                    for _ in 0..32 {
                        a.apply(ctx, ACC, add, 1);
                    }
                    if survivor == 1 {
                        a.set(ctx, FLAG, 1);
                    } else {
                        while a.get(ctx, FLAG) != 1 {
                            ctx.sleep(50_000);
                        }
                        // A coherent read recalls node 1's combined
                        // operands: every survivor contribution is in.
                        let total = a.get(ctx, ACC);
                        assert!(
                            (64..=80).contains(&total),
                            "survivor contributions lost: acc={total}"
                        );
                    }
                }
            }
        });
        let s0 = cluster.stats(0);
        let s1 = cluster.stats(1);
        assert!(
            s0.epochs_aborted >= 1,
            "home never aborted the dead node's epoch: {s0:?}"
        );
        assert!(
            s0.sharers_pruned >= 1,
            "home never pruned the dead sharer: {s0:?}"
        );
        assert!(s0.peers_down >= 1, "node 0 never declared node 2 down");
        assert!(s1.peers_down >= 1, "node 1 never declared node 2 down");
        cluster.shutdown(ctx);
    });
}

/// Kill a node in the middle of a KVS-like workload while it HOLDS a write
/// lock: the home must reclaim the orphaned lock and grant it to the
/// waiting survivors, whose blocking `wlock` calls must not hang. The
/// crashed node's un-written-back Dirty increments may be lost (fail-stop)
/// but survivor increments may not.
#[test]
fn kill_mid_kvs_orphaned_lock_is_reclaimed() {
    const HOT: usize = 4; // contended element, homed on node 0
    const FLAG: usize = 700;
    const DEAD_CHUNK: usize = 2560;
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(13);
        plan.crash_at = vec![(2, 1_000_000)];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(NODES);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            match env.node {
                2 => {
                    // Completed pre-crash RMWs (their Dirty data may still
                    // die un-written-back), then die HOLDING the lock.
                    for _ in 0..4 {
                        a.wlock(ctx, HOT);
                        let v = a.get(ctx, HOT);
                        a.set(ctx, HOT, v + 1);
                        a.unlock(ctx, HOT);
                    }
                    a.wlock(ctx, HOT);
                    ctx.sleep(2_500_000); // dead while holding the lock
                }
                survivor => {
                    ctx.sleep(2_000_000);
                    // Detection trigger + contract check: the corpse's
                    // chunks fail fast instead of hanging.
                    assert!(matches!(
                        a.try_set(ctx, DEAD_CHUNK, 1),
                        Err(DArrayError::NodeUnavailable {
                            node: 2,
                            kind: UnavailableKind::ConfirmedDead,
                            ..
                        })
                    ));
                    // These block behind the dead holder until the home
                    // reclaims the orphan; a hang would trip the deadlock
                    // detector.
                    for _ in 0..8 {
                        a.wlock(ctx, HOT);
                        let v = a.get(ctx, HOT);
                        a.set(ctx, HOT, v + 1);
                        a.unlock(ctx, HOT);
                    }
                    if survivor == 1 {
                        a.set(ctx, FLAG, 1);
                    } else {
                        while a.get(ctx, FLAG) != 1 {
                            ctx.sleep(50_000);
                        }
                        a.wlock(ctx, HOT);
                        let total = a.get(ctx, HOT);
                        a.unlock(ctx, HOT);
                        assert!(
                            (16..=20).contains(&total),
                            "survivor increments lost: hot={total}"
                        );
                    }
                }
            }
        });
        let s0 = cluster.stats(0);
        assert!(
            s0.orphaned_locks_reclaimed >= 1,
            "home never reclaimed the dead holder's lock: {s0:?}"
        );
        assert!(s0.peers_down >= 1, "node 0 never declared node 2 down");
        cluster.shutdown(ctx);
    });
}

/// A live peer behind a fully-severed asymmetric link is repeatedly
/// suspected, and every suspicion is refuted by the third node's fresh
/// lease — no quorum ever confirms a death. When the link heals, the
/// falsely-suspected peer still holds its write lock and its dirtied data
/// bit-identically, across 8 seeds.
#[test]
fn false_suspicion_under_asymmetric_loss_is_refuted() {
    const HOT: usize = 8; // chunk 0, homed on node 0; node 2 locks + dirties it
    const FLAG: usize = 700; // chunk 1, homed on node 0
    let mut golden: Option<Vec<u64>> = None;
    for seed in [1, 2, 3, 5, 8, 13, 21, 34] {
        let (chunk0, snaps) = Sim::new(SimConfig::default()).run(move |ctx| {
            let mut plan = FaultPlan::new(seed);
            plan.jitter_ns = 300;
            // Sever node 0 <-> node 2 in both directions for 1.6 ms; the
            // 0 <-> 1 and 1 <-> 2 links stay perfect, so node 1's lease on
            // node 2 never lapses and its vote refutes every suspicion.
            plan.asym_loss = vec![
                AsymmetricLoss {
                    from: 0,
                    to: 2,
                    drop_ppm: 1_000_000,
                    from_ns: 400_000,
                    until_ns: 2_000_000,
                },
                AsymmetricLoss {
                    from: 2,
                    to: 0,
                    drop_ppm: 1_000_000,
                    from_ns: 400_000,
                    until_ns: 2_000_000,
                },
            ];
            let mut fc = FaultConfig::new(plan);
            fc.rpc_timeout_ns = 20_000;
            fc.max_retries = 2;
            fc.lease_ns = 100_000;
            fc.heartbeat_ns = 25_000;
            fc.suspect_poll_ns = 10_000;
            fc.suspect_poll_rounds = 3;
            let mut cfg = ClusterConfig::with_nodes(NODES);
            cfg.fault = Some(fc);
            cfg.try_validate().expect("fault config should be valid");
            let cluster = Cluster::new(ctx, cfg);
            let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
            let contents = Arc::new(Mutex::new(Vec::new()));
            let out = contents.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                let a = arr.on(env.node);
                match env.node {
                    2 => {
                        // Before the link drops: take the lock and dirty the
                        // chunk (both homed on node 0), then sit out the
                        // outage holding both.
                        a.wlock(ctx, HOT);
                        a.set(ctx, HOT, 42);
                        ctx.sleep(2_300_000);
                        // Refuted suspicion discarded nothing: the dirtied
                        // value survived and the lock is still ours.
                        assert_eq!(a.get(ctx, HOT), 42, "dirty data lost (seed {seed})");
                        a.set(ctx, HOT, 43);
                        a.unlock(ctx, HOT);
                        a.set(ctx, FLAG, 1);
                    }
                    0 => {
                        ctx.sleep(600_000); // mid-outage
                                            // Recalling node 2's dirty copy sends a reliable RPC
                                            // into the severed link: retries exhaust, node 2
                                            // becomes Suspected, node 1 votes alive, the parked
                                            // recall replays — over and over until the heal.
                        assert_eq!(a.get(ctx, HOT), 42);
                        while a.get(ctx, FLAG) != 1 {
                            ctx.sleep(25_000);
                        }
                        // The lock was released by its owner, never
                        // reclaimed as orphaned.
                        a.wlock(ctx, HOT);
                        assert_eq!(a.get(ctx, HOT), 43);
                        a.unlock(ctx, HOT);
                        let mut v = Vec::with_capacity(512);
                        for i in 0..512 {
                            v.push(a.get(ctx, i));
                        }
                        *out.lock().unwrap() = v;
                    }
                    _ => {}
                }
            });
            let snaps: Vec<NodeStatsSnapshot> = (0..NODES).map(|n| cluster.stats(n)).collect();
            cluster.shutdown(ctx);
            let v = contents.lock().unwrap().clone();
            (v, snaps)
        });
        let s0 = &snaps[0];
        assert!(
            s0.suspicions >= 1,
            "seed {seed}: the severed link never provoked a suspicion: {s0:?}"
        );
        assert_eq!(
            s0.refutations, s0.suspicions,
            "seed {seed}: a suspicion was not refuted: {s0:?}"
        );
        for (n, s) in snaps.iter().enumerate() {
            assert_eq!(
                (s.peers_down, s.confirmed_deaths, s.membership_epoch),
                (0, 0, 0),
                "seed {seed}: node {n} declared a live peer dead: {s:?}"
            );
        }
        match &golden {
            None => golden = Some(chunk0),
            Some(g) => assert_eq!(
                &chunk0, g,
                "seed {seed}: surviving chunk contents are not bit-identical"
            ),
        }
    }
}

/// A network partition shorter than the retry-exhaustion threshold is
/// ridden out by the reliable channel: retransmits recover every RPC, the
/// final contents match the fault-free baseline, and nobody is suspected,
/// let alone declared dead.
#[test]
fn short_partition_is_ridden_out_without_death() {
    let mut plan = FaultPlan::new(29);
    plan.partitions = vec![Partition {
        groups: vec![vec![0], vec![1, 2]],
        from_ns: 100_000,
        until_ns: 350_000,
    }];
    let mut fc = FaultConfig::new(plan);
    fc.rpc_timeout_ns = 100_000;
    fc.max_retries = 4; // exhaustion needs ~1.5 ms of silence >> 250 us window
    let mut cfg = ClusterConfig::with_nodes(NODES);
    cfg.fault = Some(fc);
    let (contents, snaps) = run_workload(cfg);
    assert_eq!(contents, expected_contents());
    let retransmits: u64 = snaps.iter().map(|s| s.retransmits).sum();
    assert!(
        retransmits > 0,
        "the partition window never bit: the workload ended too early"
    );
    for (n, s) in snaps.iter().enumerate() {
        assert_eq!(
            (s.suspicions, s.peers_down, s.confirmed_deaths),
            (0, 0, 0),
            "node {n}: a 250 us partition must be absorbed by retries: {s:?}"
        );
    }
}

/// A permanent partition splits {0} from {1, 2}: the majority side reaches
/// a 2-of-2 quorum and excommunicates node 0; the isolated minority, unable
/// to reach any voter (every lease lapses), converges on its own degraded
/// view instead of polling forever. Both sides keep serving their own data.
#[test]
fn partition_majority_excommunicates_minority() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(31);
        plan.partitions = vec![Partition {
            groups: vec![vec![0], vec![1, 2]],
            from_ns: 500_000,
            until_ns: u64::MAX,
        }];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(NODES);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            match env.node {
                0 => {
                    ctx.sleep(600_000);
                    // Minority side: both peers become unreachable. Neither
                    // can vote, so after the poll rounds the electorate
                    // degenerates and node 0 confirms on its local view —
                    // its declarations cannot propagate anywhere.
                    assert!(matches!(
                        a.try_set(ctx, 1500, 9), // chunk 2, homed on node 1
                        Err(DArrayError::NodeUnavailable { node: 1, .. })
                    ));
                    assert!(matches!(
                        a.try_get(ctx, 2560), // chunk 5, homed on node 2
                        Err(DArrayError::NodeUnavailable { node: 2, .. })
                    ));
                    // Its own partition keeps working.
                    a.set(ctx, 8, 1);
                    assert_eq!(a.get(ctx, 8), 1);
                }
                1 => {
                    ctx.sleep(600_000);
                    assert!(matches!(
                        a.try_get(ctx, 100), // chunk 0, homed on node 0
                        Err(DArrayError::NodeUnavailable {
                            node: 0,
                            epoch: 1,
                            kind: UnavailableKind::ConfirmedDead,
                        })
                    ));
                    // The majority pair keeps full coherence between them.
                    a.set(ctx, 2100, 5); // chunk 4, homed on node 2
                    assert_eq!(a.get(ctx, 2100), 5);
                }
                _ => {
                    ctx.sleep(600_000);
                    assert!(matches!(
                        a.try_get(ctx, 600), // chunk 1, homed on node 0
                        Err(DArrayError::NodeUnavailable { node: 0, .. })
                    ));
                    a.set(ctx, 1600, 6); // chunk 3, homed on node 1
                    assert_eq!(a.get(ctx, 1600), 6);
                }
            }
        });
        let (s0, s1, s2) = (cluster.stats(0), cluster.stats(1), cluster.stats(2));
        // Majority: each survivor confirmed exactly node 0, via quorum.
        assert_eq!((s1.peers_down, s1.confirmed_deaths), (1, 1), "{s1:?}");
        assert_eq!((s2.peers_down, s2.confirmed_deaths), (1, 1), "{s2:?}");
        assert_eq!(s1.membership_epoch, 1);
        assert_eq!(s2.membership_epoch, 1);
        // Minority: confirmed both peers through the degenerate electorate.
        assert_eq!((s0.peers_down, s0.confirmed_deaths), (2, 2), "{s0:?}");
        assert!(s0.suspicions >= 2, "{s0:?}");
        assert_eq!(s0.membership_epoch, 2);
        cluster.shutdown(ctx);
    });
}

/// A per-test scratch directory for durable chunk logs, removed on drop so
/// reruns start from empty logs.
struct TempStoreDir(PathBuf);

impl TempStoreDir {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("darray-chaos-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        Self(p)
    }
}

impl Drop for TempStoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kill-then-restart, cold: a node crashes mid-run; a brand-new cluster is
/// then brought up over the same durable store directory (the in-sim
/// equivalent of restarting the process on the same disks). Every write
/// that was acknowledged through the persist-before-ack path before the
/// kill must be recovered by log replay; the crashed node's un-written-back
/// dirty data must NOT reappear (it was never promised durable).
#[test]
fn kill_restart_recovers_exactly_the_acked_writes() {
    kill_restart_roundtrip(1, "kill-restart");
}

/// The same kill/restart round-trip with the multi-threaded runtime: the
/// persist-before-ack guarantee is per chunk, and the chunk→thread
/// placement must not change which writes survive.
#[test]
fn kill_restart_recovers_with_multithreaded_runtime() {
    kill_restart_roundtrip(2, "kill-restart-rt2");
}

fn kill_restart_roundtrip(runtime_threads: usize, dir_name: &str) {
    // 2 nodes, 512-element chunks, block-distributed homes: chunks 0..3
    // are homed on node 0 and chunks 3..6 on node 1.
    const COMMITTED0: usize = 0; // chunk 0 (home 0): written by 1, recalled by 0
    const COMMITTED1: usize = 1536; // chunk 3 (home 1): written by 0, recalled by 1
    const UNCOMMITTED: usize = 1024; // chunk 2 (home 0): dirtied by 1, never recalled
    const FLAG: usize = 512; // chunk 1 (home 0)
    const FLAG2: usize = 516; // same chunk; writer-disjoint with FLAG
    const CORPSE: usize = 2048; // chunk 4 (home 1): probed after the kill
    let dir = TempStoreDir::new(dir_name);
    let mk_cfg = |dir: &PathBuf| {
        let mut cfg = ClusterConfig::with_nodes(2);
        cfg.runtime_threads = runtime_threads;
        cfg.durability.policy = DurabilityPolicy::Writethrough;
        cfg.durability.dir = Some(dir.clone());
        cfg
    };

    // ---- Incarnation 1: write, persist-through-recall, then crash. ----
    let cfg = mk_cfg(&dir.0);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let mut plan = FaultPlan::new(17);
        plan.crash_at = vec![(1, 2_000_000)];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = cfg;
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 1 {
                // Dirty chunk 0 remotely, then publish: node 0's read-back
                // recalls the dirty image and persists it (acked => must
                // survive the kill).
                for k in 0..16 {
                    a.set(ctx, COMMITTED0 + k, 1_000 + k as u64);
                }
                a.set(ctx, FLAG, 1);
                // Read back node 0's writes to our homed chunk 1: the
                // recall lands here and WE persist it before acking.
                while a.get(ctx, FLAG2) != 1 {
                    ctx.sleep(20_000);
                }
                for k in 0..16 {
                    assert_eq!(a.get(ctx, COMMITTED1 + k), 2_000 + k as u64);
                }
                // Dirty chunk 2 and die with the only copy: never recalled,
                // never persisted, so the restart must NOT resurrect it.
                for k in 0..16 {
                    a.set(ctx, UNCOMMITTED + k, 3_000 + k as u64);
                }
                ctx.sleep(3_000_000); // dead at 2 ms
            } else {
                for k in 0..16 {
                    a.set(ctx, COMMITTED1 + k, 2_000 + k as u64);
                }
                a.set(ctx, FLAG2, 1);
                while a.get(ctx, FLAG) != 1 {
                    ctx.sleep(20_000);
                }
                for k in 0..16 {
                    assert_eq!(a.get(ctx, COMMITTED0 + k), 1_000 + k as u64);
                }
                // Outlive the crash and watch the death being confirmed.
                ctx.sleep(3_000_000);
                assert!(matches!(
                    a.try_set(ctx, CORPSE, 9),
                    Err(DArrayError::NodeUnavailable {
                        node: 1,
                        kind: UnavailableKind::ConfirmedDead,
                        ..
                    })
                ));
            }
        });
        let (s0, s1) = (cluster.stats(0), cluster.stats(1));
        assert!(
            s0.flush_persists >= 1,
            "node 0 never persisted the recalled chunk: {s0:?}"
        );
        assert!(
            s1.flush_persists >= 1,
            "node 1 never persisted the recalled chunk: {s1:?}"
        );
        assert!(s0.peers_down >= 1, "node 0 never declared node 1 down");
        cluster.shutdown(ctx);
    });

    // ---- Incarnation 2: same store directory, fresh memory. ----
    let cfg = mk_cfg(&dir.0);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 0 {
                // Acked-before-kill writes came back from the logs...
                for k in 0..16 {
                    assert_eq!(
                        a.get(ctx, COMMITTED0 + k),
                        1_000 + k as u64,
                        "acked write lost across the restart"
                    );
                }
                // ...and the un-acked dirty data did not.
                for k in 0..16 {
                    assert_eq!(
                        a.get(ctx, UNCOMMITTED + k),
                        0,
                        "un-acked dirty data resurrected by replay"
                    );
                }
            } else {
                for k in 0..16 {
                    assert_eq!(
                        a.get(ctx, COMMITTED1 + k),
                        2_000 + k as u64,
                        "acked write lost across the restart"
                    );
                }
                // The restarted incarnation serves new coherent writes.
                a.set(ctx, CORPSE, 9);
                assert_eq!(a.get(ctx, CORPSE), 9);
            }
        });
        let (s0, s1) = (cluster.stats(0), cluster.stats(1));
        assert!(
            s0.log_replays >= 2 && s0.recovered_chunks >= 2,
            "node 0 replayed nothing: {s0:?}"
        );
        assert!(
            s1.log_replays >= 1 && s1.recovered_chunks >= 1,
            "node 1 replayed nothing: {s1:?}"
        );
        cluster.shutdown(ctx);
    });
}

/// Compaction knob set shared by the checkpoint chaos tests: checkpoint
/// after every persisted record (the most aggressive schedule the config
/// allows) and truncate the covered log prefix.
fn compaction_cfg(dir: &Path) -> ClusterConfig {
    let mut cfg = ClusterConfig::with_nodes(2);
    cfg.durability.policy = DurabilityPolicy::Writethrough;
    cfg.durability.dir = Some(dir.to_path_buf());
    cfg.durability.checkpoint_every_persists = Some(1);
    cfg.durability.compact = true;
    cfg
}

/// The kill instant for the compaction loop rounds: far past the commit
/// phase (the workload below settles within ~1 ms of virtual time even
/// under the chaotic schedules; node 0 asserts it).
const LOOP_KILL_NS: u64 = 4_000_000;

/// One incarnation of the compaction kill-restart loop: both nodes write
/// round-stamped slices into each other's homed chunks, read them back
/// (forcing the recall → persist-before-ack → checkpoint path on every
/// slice), then — under a fault plan — node 1 is killed and node 0 watches
/// the death being confirmed. Every value asserted below was *observed
/// read*, so by persist-before-ack it is durable before the kill; rounds
/// after the first also assert the previous round's committed values came
/// back from checkpoint-plus-suffix recovery.
fn compaction_round(dir: &Path, round: usize, seed: Option<u64>) -> Vec<NodeStatsSnapshot> {
    let cfg = compaction_cfg(dir);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let mut cfg = cfg;
        let faulty = seed.is_some();
        if let Some(seed) = seed {
            let mut plan = FaultPlan::new(seed.wrapping_add(round as u64));
            plan.jitter_ns = 300;
            plan.drop_ppm = 10_000;
            plan.crash_at = vec![(1, LOOP_KILL_NS)];
            let mut fc = FaultConfig::new(plan);
            fc.rpc_timeout_ns = 50_000;
            fc.max_retries = 3;
            cfg.fault = Some(fc);
        }
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        let r = round as u64;
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            // Per-round flags, each homed on the *other* node than its
            // writer (chunk 1 on node 0, chunk 5 on node 1): every flag
            // write is a remote dirty write, so the observing read recalls
            // it through the persist-before-ack path — a home-local write
            // would reach home memory without ever being acked durable.
            // Distinct indices each round, so a recovered flag from a
            // previous incarnation can never satisfy this round's wait.
            let flag_a = 512 + round * 8;
            let flag_b = 2560 + round * 8;
            if env.node == 1 {
                // Chunks 3 and 4 are this node's own homes: the previous
                // round's acked writes must have been recovered locally.
                if round > 0 {
                    for k in 0..16 {
                        assert_eq!(
                            a.get(ctx, 1536 + k),
                            r * 2_000 + k as u64,
                            "round {round}: acked write lost across the restart"
                        );
                        assert_eq!(a.get(ctx, 2048 + k), r * 2_000 + 500 + k as u64);
                    }
                }
                // Dirty two chunks homed on node 0, then publish.
                for k in 0..16 {
                    a.set(ctx, k, (r + 1) * 1_000 + k as u64);
                    a.set(ctx, 1024 + k, (r + 1) * 1_000 + 500 + k as u64);
                }
                a.set(ctx, flag_a, 1);
                while a.get(ctx, flag_b) != 1 {
                    ctx.sleep(20_000);
                }
                // Read back node 0's writes to our homed chunks: the
                // recalls land here and WE persist them before acking.
                for k in 0..16 {
                    assert_eq!(a.get(ctx, 1536 + k), (r + 1) * 2_000 + k as u64);
                    assert_eq!(a.get(ctx, 2048 + k), (r + 1) * 2_000 + 500 + k as u64);
                }
                if faulty {
                    ctx.sleep(LOOP_KILL_NS + 2_000_000); // dead at the kill instant
                }
            } else {
                if round > 0 {
                    for k in 0..16 {
                        assert_eq!(
                            a.get(ctx, k),
                            r * 1_000 + k as u64,
                            "round {round}: acked write lost across the restart"
                        );
                        assert_eq!(a.get(ctx, 1024 + k), r * 1_000 + 500 + k as u64);
                    }
                }
                for k in 0..16 {
                    a.set(ctx, 1536 + k, (r + 1) * 2_000 + k as u64);
                    a.set(ctx, 2048 + k, (r + 1) * 2_000 + 500 + k as u64);
                }
                a.set(ctx, flag_b, 1);
                while a.get(ctx, flag_a) != 1 {
                    ctx.sleep(20_000);
                }
                for k in 0..16 {
                    assert_eq!(a.get(ctx, k), (r + 1) * 1_000 + k as u64);
                    assert_eq!(a.get(ctx, 1024 + k), (r + 1) * 1_000 + 500 + k as u64);
                }
                if faulty {
                    assert!(
                        ctx.now() < LOOP_KILL_NS,
                        "round {round}: commit phase overran the kill instant ({})",
                        ctx.now()
                    );
                    // Outlive the crash and confirm the death: the probe
                    // targets a never-written index of chunk 5 (homed on
                    // the corpse; node 0's write rights on it were recalled
                    // when node 1 observed flag_b), so it can never commit
                    // and never perturbs contents.
                    ctx.sleep(LOOP_KILL_NS + 1_000_000 - ctx.now());
                    assert!(matches!(
                        a.try_set(ctx, 3000, 9),
                        Err(DArrayError::NodeUnavailable {
                            node: 1,
                            kind: UnavailableKind::ConfirmedDead,
                            ..
                        })
                    ));
                }
            }
        });
        // The between-phases barrier: every store writes one more
        // checkpoint generation before this incarnation ends.
        cluster.checkpoint_all().expect("checkpoint_all failed");
        let snaps = (0..2).map(|n| cluster.stats(n)).collect();
        cluster.shutdown(ctx);
        snaps
    })
}

/// A final fault-free incarnation over the same store directory that reads
/// the whole array out (recovery only — no new writes).
fn compaction_final_read(dir: &Path) -> (Vec<u64>, Vec<NodeStatsSnapshot>) {
    let cfg = compaction_cfg(dir);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        let contents = Arc::new(Mutex::new(Vec::new()));
        let out = contents.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            if env.node == 0 {
                let a = arr.on(env.node);
                let mut v = Vec::with_capacity(LEN);
                for i in 0..LEN {
                    v.push(a.get(ctx, i));
                }
                *out.lock().unwrap() = v;
            }
        });
        let snaps = (0..2).map(|n| cluster.stats(n)).collect();
        cluster.shutdown(ctx);
        let v = contents.lock().unwrap().clone();
        (v, snaps)
    })
}

/// What the loop must converge to: the last round's slice values plus one
/// raised flag pair per round. Everything else stays zero — in particular
/// the corpse-probe index.
fn expected_loop_contents(rounds: usize) -> Vec<u64> {
    let last = rounds as u64;
    let mut v = vec![0u64; LEN];
    for k in 0..16u64 {
        v[k as usize] = last * 1_000 + k;
        v[1024 + k as usize] = last * 1_000 + 500 + k;
        v[1536 + k as usize] = last * 2_000 + k;
        v[2048 + k as usize] = last * 2_000 + 500 + k;
    }
    for r in 0..rounds {
        v[512 + r * 8] = 1;
        v[2560 + r * 8] = 1;
    }
    v
}

/// Kill-restart *loop*: three crash-restart incarnations over one log
/// directory with aggressive compaction, then a fault-free read-out, across
/// 8 seeds. Contents must stay bit-identical to the fault-free baseline,
/// and the final reopen must replay O(live chunks) — not the store's full
/// persist history (the bounded-replay acceptance check).
#[test]
fn kill_restart_loop_with_compaction_matches_fault_free_baseline() {
    const ROUNDS: usize = 3;
    let baseline = {
        let dir = TempStoreDir::new("ckpt-loop-baseline");
        for round in 0..ROUNDS {
            compaction_round(&dir.0, round, None);
        }
        let (contents, _) = compaction_final_read(&dir.0);
        assert_eq!(contents, expected_loop_contents(ROUNDS));
        contents
    };
    for seed in [3, 5, 11, 17, 23, 31, 47, 0xC0FFEE] {
        let dir = TempStoreDir::new(&format!("ckpt-loop-{seed}"));
        // Acked (persist-before-ack) flushes and truncated log records per
        // node, accumulated across all incarnations.
        let mut acked = [0u64; 2];
        let mut truncated = [0u64; 2];
        for round in 0..ROUNDS {
            let snaps = compaction_round(&dir.0, round, Some(seed));
            assert!(
                snaps[0].peers_down >= 1,
                "seed {seed} round {round}: the kill was never confirmed: {:?}",
                snaps[0]
            );
            for (n, s) in snaps.iter().enumerate() {
                assert!(
                    s.compactions >= 1,
                    "seed {seed} round {round}: node {n} never checkpointed: {s:?}"
                );
                if round > 0 {
                    assert!(
                        s.recovered_chunks >= 1,
                        "seed {seed} round {round}: node {n} recovered nothing: {s:?}"
                    );
                }
                acked[n] += s.flush_persists;
                truncated[n] += s.truncated_records;
            }
        }
        let (contents, snaps) = compaction_final_read(&dir.0);
        assert_eq!(
            contents, baseline,
            "seed {seed}: contents diverged from the fault-free baseline"
        );
        for (n, s) in snaps.iter().enumerate() {
            assert!(
                truncated[n] >= 1,
                "seed {seed}: node {n}'s compactions never truncated anything"
            );
            // Bounded replay: the reopen scans the checkpoint image plus
            // the short uncompacted suffix — not every record ever
            // persisted. `recovered_chunks` is exactly the live-chunk
            // count; the slack covers the records appended since the
            // penultimate checkpoint of the previous incarnation.
            assert!(
                s.log_replays <= s.recovered_chunks + 4,
                "seed {seed}: node {n} replay is not bounded by live chunks: {s:?}"
            );
            assert!(
                acked[n] > s.log_replays,
                "seed {seed}: node {n} replayed its full persist history \
                 ({} acked persists, {} replayed) — compaction never bit",
                acked[n],
                s.log_replays
            );
        }
    }
}

/// Tear the newest checkpoint sidecar mid-frame (the torn-write crash
/// shape: a prefix of the file, its CRC frame now unverifiable) and reopen:
/// recovery must fall back to the previous checkpoint generation plus the
/// untruncated log suffix, losing no acked write. This is the lag-by-one
/// truncation invariant, end to end: compaction N only drops the log prefix
/// checkpoint N-1 covers, so `ckpt.prev` + log is always complete.
#[test]
fn torn_checkpoint_mid_frame_falls_back_to_previous_generation() {
    let dir = TempStoreDir::new("torn-ckpt");
    let cfg = compaction_cfg(&dir.0);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        // Three write→recall→checkpoint generations over the same chunk:
        // afterwards node 0 has a newest checkpoint, a previous generation,
        // and a log suffix — the full fallback setup.
        for gen in 1..=3u64 {
            let w = arr.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                if env.node == 1 {
                    let a = w.on(env.node);
                    for k in 0..16 {
                        a.set(ctx, k, gen * 100 + k as u64);
                    }
                }
            });
            let rd = arr.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                if env.node == 0 {
                    let a = rd.on(env.node);
                    for k in 0..16 {
                        assert_eq!(a.get(ctx, k), gen * 100 + k as u64);
                    }
                }
            });
            cluster.checkpoint_all().expect("checkpoint_all failed");
        }
        let s0 = cluster.stats(0);
        assert!(
            s0.compactions >= 3,
            "node 0 never rotated a checkpoint generation: {s0:?}"
        );
        cluster.shutdown(ctx);
    });

    let ckpt = dir.0.join("node0.ckpt");
    let prev = dir.0.join("node0.ckpt.prev");
    assert!(
        prev.exists(),
        "no previous checkpoint generation to fall back to"
    );
    let len = std::fs::metadata(&ckpt)
        .expect("newest checkpoint sidecar missing")
        .len();
    assert!(len > 128, "checkpoint too small to tear mid-frame: {len}");
    let f = std::fs::OpenOptions::new().write(true).open(&ckpt).unwrap();
    f.set_len(len - 64).unwrap();
    drop(f);

    let cfg = compaction_cfg(&dir.0);
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            if env.node == 0 {
                let a = arr.on(env.node);
                for k in 0..16 {
                    assert_eq!(
                        a.get(ctx, k),
                        300 + k as u64,
                        "acked write lost to the torn checkpoint"
                    );
                }
            }
        });
        let s0 = cluster.stats(0);
        assert!(
            s0.recovered_chunks >= 1,
            "node 0 recovered nothing from the fallback path: {s0:?}"
        );
        cluster.shutdown(ctx);
    });
}

/// Kill the *target* of a live chunk migration mid-transfer, across 8
/// seeds: the joiner is admitted, caches the chunk, and dies at a fixed
/// instant — exactly as the re-homing of that chunk begins. The source's
/// fence stalls against the corpse (the recall's invalidate and then the
/// transfer land on a dead link), the migration's own retries drive the
/// death confirmation, and the source must abort the move and re-assume
/// the chunk with byte-identical contents, still serving reads and writes.
#[test]
fn kill_migration_target_source_reassumes_bit_identical() {
    const KILL_NS: u64 = 5_000_000;
    const CHUNK0: usize = 0; // homed on node 0 under the 2-node prefix
    let mut golden: Option<Vec<u64>> = None;
    for seed in [3, 5, 11, 17, 23, 31, 47, 0xC0FFEE] {
        let (contents, snaps) = Sim::new(SimConfig::default()).run(move |ctx| {
            let mut plan = FaultPlan::new(seed);
            plan.jitter_ns = 600;
            plan.stall_ppm = 2_000;
            plan.stall_ns = (5_000, 25_000);
            plan.crash_at = vec![(2, KILL_NS)];
            let mut fc = FaultConfig::new(plan);
            fc.rpc_timeout_ns = 50_000;
            fc.max_retries = 3;
            let mut cfg = ClusterConfig::with_nodes(NODES);
            cfg.elastic = true;
            cfg.initial_nodes = Some(2);
            cfg.fault = Some(fc);
            let cluster = Cluster::new(ctx, cfg);
            let arr = cluster.alloc_with::<u64>(LEN, ArrayOptions::default(), |i| i as u64);

            // Phase 1: node 1 dirties the soon-to-migrate chunk remotely.
            let arr1 = arr.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                if env.node == 1 {
                    let a = arr1.on(env.node);
                    for k in 0..16 {
                        a.set(ctx, CHUNK0 + k, 1_000 + k as u64);
                    }
                }
            });

            // Join the spare, then let it cache the chunk so the migration
            // fence has a right to recall from the (about to die) target.
            assert_eq!(cluster.join_peer(ctx, 2), NODES, "seed {seed}");
            let arr2 = arr.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                if env.node == 2 {
                    let a = arr2.on(env.node);
                    for k in 0..16 {
                        assert_eq!(a.get(ctx, CHUNK0 + k), 1_000 + k as u64);
                    }
                }
            });
            assert!(
                ctx.now() < KILL_NS,
                "seed {seed}: setup overran the kill instant ({})",
                ctx.now()
            );

            // Start the re-homing at the kill instant: the target dies as
            // the transfer begins, before it can possibly ack, so the only
            // settled outcome is the abort. `migrate_chunk` observes it.
            ctx.sleep_until(KILL_NS);
            let moved = cluster.migrate_chunk(ctx, &arr, 0, 2);
            assert!(
                !moved,
                "seed {seed}: migration to a corpse must settle as aborted"
            );

            // Phase 2: the source serves the chunk again — byte-identical
            // contents, and fresh writes still coherent across survivors.
            let arr3 = arr.clone();
            let contents = Arc::new(Mutex::new(Vec::new()));
            let out = contents.clone();
            cluster.run(ctx, 1, move |ctx, env| {
                let a = arr3.on(env.node);
                match env.node {
                    0 => {
                        for k in 0..16 {
                            assert_eq!(
                                a.get(ctx, CHUNK0 + k),
                                1_000 + k as u64,
                                "seed {seed}: re-assumed chunk lost a write"
                            );
                        }
                        let mut v = Vec::with_capacity(512);
                        for i in 0..512 {
                            v.push(a.get(ctx, i));
                        }
                        *out.lock().unwrap() = v;
                        a.set(ctx, 20, 77); // write through the re-assumed home
                    }
                    1 => {
                        for k in 0..16 {
                            assert_eq!(a.get(ctx, CHUNK0 + k), 1_000 + k as u64);
                        }
                        while a.get(ctx, 20) != 77 {
                            ctx.sleep(20_000);
                        }
                    }
                    _ => {} // the corpse
                }
            });
            let snaps: Vec<NodeStatsSnapshot> = (0..NODES).map(|n| cluster.stats(n)).collect();
            cluster.shutdown(ctx);
            let v = contents.lock().unwrap().clone();
            (v, snaps)
        });
        let (s0, s1) = (&snaps[0], &snaps[1]);
        assert_eq!(
            s0.migrations_out, 0,
            "seed {seed}: an aborted move must not count as a migration: {s0:?}"
        );
        assert!(
            s0.peers_down >= 1,
            "seed {seed}: the stalled transfer never confirmed the death: {s0:?}"
        );
        // Node 1 only *votes* in the source's quorum poll; with no traffic
        // of its own into the corpse it may never declare the death — only
        // the source (node 0, where the fence stalled) must.
        let _ = s1;
        match &golden {
            None => golden = Some(contents),
            Some(g) => assert_eq!(
                &contents, g,
                "seed {seed}: re-assumed chunk contents are not bit-identical"
            ),
        }
    }
}

/// Kill-then-restart, warm: a partition gets node 0 excommunicated by the
/// majority (and the minority excommunicates everyone back); after the
/// partition heals, `Cluster::restart_peer` re-admits each side between run
/// phases. Every view bumps its membership epoch past the death epoch and
/// the re-admitted peers serve coherent traffic again.
#[test]
fn restart_peer_readmits_after_confirmed_death() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(37);
        plan.partitions = vec![Partition {
            groups: vec![vec![0], vec![1, 2]],
            from_ns: 200_000,
            until_ns: 1_500_000,
        }];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(NODES);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());

        // Phase 1: provoke confirmed deaths on both sides of the split,
        // then outlive the heal so the deaths are settled when it ends.
        let arr1 = arr.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let arr = &arr1;
            let a = arr.on(env.node);
            ctx.sleep(400_000); // mid-partition
            match env.node {
                0 => {
                    assert!(matches!(
                        a.try_set(ctx, 1500, 9), // chunk 2, homed on node 1
                        Err(DArrayError::NodeUnavailable { node: 1, .. })
                    ));
                }
                1 => {
                    assert!(matches!(
                        a.try_get(ctx, 100), // chunk 0, homed on node 0
                        Err(DArrayError::NodeUnavailable { node: 0, .. })
                    ));
                }
                _ => {
                    assert!(matches!(
                        a.try_get(ctx, 600), // chunk 1, homed on node 0
                        Err(DArrayError::NodeUnavailable { node: 0, .. })
                    ));
                }
            }
            ctx.sleep(2_000_000); // past the heal at 1.5 ms
        });
        let epoch_before: Vec<u64> = (0..NODES)
            .map(|n| cluster.stats(n).membership_epoch)
            .collect();
        assert!(epoch_before.iter().all(|&e| e >= 1), "{epoch_before:?}");

        // Between phases every death is settled: re-admit both sides.
        // The majority pair re-admits node 0; node 0 re-admits node 1
        // (the peer it probed and confirmed through its degenerate
        // electorate). Node 0 may or may not have confirmed node 2 —
        // restart_peer on a view that never declared the death is a no-op.
        assert_eq!(cluster.restart_peer(ctx, 0), 2, "views 1 and 2 re-admit 0");
        assert_eq!(cluster.restart_peer(ctx, 1), 1, "view 0 re-admits 1");
        let _ = cluster.restart_peer(ctx, 2);

        // Phase 2: cross-partition coherence works again in both
        // directions — the fills that failed fast above now succeed.
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            match env.node {
                0 => {
                    a.set(ctx, 1500, 11); // chunk 2, homed on node 1
                    assert_eq!(a.get(ctx, 1500), 11);
                }
                1 => {
                    a.set(ctx, 101, 12); // chunk 0, homed on node 0
                    assert_eq!(a.get(ctx, 101), 12);
                }
                _ => {
                    a.set(ctx, 600, 13); // chunk 1, homed on node 0
                    assert_eq!(a.get(ctx, 600), 13);
                }
            }
        });
        for (n, &before) in epoch_before.iter().enumerate() {
            let s = cluster.stats(n);
            assert!(
                s.membership_epoch > before,
                "node {n} re-admitted without burning a fresh epoch: {s:?}"
            );
        }
        cluster.shutdown(ctx);
    });
}
