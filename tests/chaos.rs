//! Chaos suite (gated behind the `chaos` feature): randomized fault
//! schedules must never change *what* the cluster computes, only *when*.
//!
//! A mixed workload — writer-disjoint `set`s, `wlock`-protected
//! read-modify-writes, and commutative `apply`s — has a timing-independent
//! final state, so its contents under any fault schedule must match the
//! fault-free run bit for bit. Run with:
//!
//! ```text
//! cargo test --features chaos --test chaos
//! ```
#![cfg(feature = "chaos")]

use std::sync::{Arc, Mutex};

use darray::{
    ArrayOptions, Cluster, ClusterConfig, DArrayError, FaultConfig, FaultPlan, Sim, SimConfig,
};

const LEN: usize = 3072;
const NODES: usize = 3;

/// Run the mixed workload; return (final contents, Σ rpc_timeouts,
/// Σ retransmits, Σ dup_rpcs over all nodes).
fn run_workload(cfg: ClusterConfig) -> (Vec<u64>, u64, u64, u64) {
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, cfg);
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        let contents = Arc::new(Mutex::new(Vec::new()));
        let out = contents.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let n = env.node;
            // Writer-disjoint sets: every index is written by exactly one
            // (node, k) pair, so the final value is timing-independent.
            for k in 0..96 {
                let idx = k * NODES + n;
                a.set(ctx, idx, (n * 10_000 + k) as u64);
            }
            // Lock-protected increments of shared hot elements: increments
            // commute, so only the count matters.
            for k in 0..12 {
                let idx = LEN - 1 - (k % 4);
                a.wlock(ctx, idx);
                let v = a.get(ctx, idx);
                a.set(ctx, idx, v + 1);
                a.unlock(ctx, idx);
            }
            // Commutative applies on a contended range.
            for k in 0..64 {
                a.apply(ctx, LEN / 2 + k, add, (n + 1) as u64);
            }
            env.barrier(ctx);
            if n == 0 {
                let mut v = Vec::with_capacity(LEN);
                for i in 0..LEN {
                    v.push(a.get(ctx, i));
                }
                *out.lock().unwrap() = v;
            }
            env.barrier(ctx);
        });
        let (mut timeouts, mut retransmits, mut dups) = (0, 0, 0);
        for node in 0..NODES {
            let s = cluster.stats(node);
            timeouts += s.rpc_timeouts;
            retransmits += s.retransmits;
            dups += s.dup_rpcs;
        }
        cluster.shutdown(ctx);
        let v = contents.lock().unwrap().clone();
        (v, timeouts, retransmits, dups)
    })
}

fn chaotic_config(seed: u64) -> ClusterConfig {
    let mut plan = FaultPlan::new(seed);
    plan.jitter_ns = 600;
    plan.drop_ppm = 30_000;
    plan.stall_ppm = 2_000;
    plan.stall_ns = (5_000, 25_000);
    let mut cfg = ClusterConfig::with_nodes(NODES);
    cfg.fault = Some(FaultConfig::new(plan));
    cfg
}

/// The expected final contents, independent of faults and timing.
fn expected_contents() -> Vec<u64> {
    let mut v = vec![0u64; LEN];
    for n in 0..NODES {
        for k in 0..96 {
            v[k * NODES + n] = (n * 10_000 + k) as u64;
        }
    }
    for e in v.iter_mut().skip(LEN - 4).take(4) {
        *e += (NODES * 3) as u64; // 12 increments cycling over 4 elements
    }
    for e in v.iter_mut().skip(LEN / 2).take(64) {
        *e += (1 + 2 + 3) as u64; // Σ (n+1) over the 3 nodes
    }
    v
}

#[test]
fn chaos_matches_fault_free_baseline_across_seeds() {
    let baseline = {
        let (contents, timeouts, retransmits, dups) =
            run_workload(ClusterConfig::with_nodes(NODES));
        assert_eq!(
            (timeouts, retransmits, dups),
            (0, 0, 0),
            "fault-free run must not exercise the reliability machinery"
        );
        assert_eq!(contents, expected_contents());
        contents
    };
    for seed in [3, 5, 11, 17, 23, 31, 47, 0xC0FFEE] {
        let (contents, timeouts, retransmits, _dups) = run_workload(chaotic_config(seed));
        assert_eq!(
            contents, baseline,
            "final contents diverged from the fault-free run under seed {seed}"
        );
        assert!(
            timeouts > 0 && retransmits > 0,
            "seed {seed} injected no observable faults (timeouts={timeouts}, \
             retransmits={retransmits}); the schedule is too tame to test recovery"
        );
    }
}

#[test]
fn crash_is_detected_and_degrades_gracefully() {
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(7);
        plan.crash_at = vec![(1, 2_000_000)];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(2);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(8192, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            if env.node == 0 {
                // Pre-crash: a remote chunk homed on node 1 works normally
                // (and stays cached with Exclusive rights).
                a.set(ctx, 4096, 7);
                assert_eq!(a.get(ctx, 4096), 7);
                // Wait past the crash, then touch a chunk that was never
                // cached: the fill times out, retries, and fails over.
                ctx.sleep(3_000_000);
                assert_eq!(
                    a.try_set(ctx, 7000, 1),
                    Err(DArrayError::NodeUnavailable { node: 1 })
                );
                // Locks homed on the dead node fail fast.
                assert_eq!(
                    a.try_wlock(ctx, 7000),
                    Err(DArrayError::NodeUnavailable { node: 1 })
                );
                // Graceful degradation: local chunks and already-cached
                // remote chunks keep working.
                a.set(ctx, 10, 3);
                assert_eq!(a.get(ctx, 10), 3);
                assert_eq!(a.try_get(ctx, 4096), Ok(7));
            } else {
                // The "crashed" node's CPU is alive (fail-stop cuts only its
                // network); purely local work still succeeds.
                a.set(ctx, 5000, 5);
                assert_eq!(a.get(ctx, 5000), 5);
            }
        });
        let s0 = cluster.stats(0);
        assert!(s0.rpc_timeouts >= 1, "no timeout recorded: {s0:?}");
        assert!(
            s0.peers_down == 1,
            "node 0 should declare exactly node 1 down: {s0:?}"
        );
        cluster.shutdown(ctx);
    });
}

/// Kill a node in the middle of a PageRank-like workload: the crashed node
/// holds an Operate grant (its combined local operands die with it), the
/// home aborts the orphaned epoch on detection, and the survivors'
/// contributions all land. Blocking reads across the recall-from-a-corpse
/// path must complete (the dsim deadlock detector turns a hang into a
/// panic).
#[test]
fn kill_mid_operate_epoch_aborts_and_survivors_converge() {
    const ACC: usize = 4; // accumulator element, homed on node 0
    const FLAG: usize = 700; // completion flag, a different node-0 chunk
    const DEAD_CHUNK: usize = 2560; // homed on node 2, never cached pre-crash
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(11);
        plan.crash_at = vec![(2, 1_000_000)];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(NODES);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            match env.node {
                2 => {
                    // Rank contributions under an Operate grant; the node
                    // dies before any recall, so these combined operands are
                    // lost (fail-stop) and must NOT be required below.
                    for _ in 0..16 {
                        a.apply(ctx, ACC, add, 1);
                    }
                    ctx.sleep(2_000_000); // dead past this point
                }
                survivor => {
                    ctx.sleep(2_000_000);
                    if survivor == 0 {
                        // Forces the recall of the orphaned epoch while the
                        // home still believes node 2 is alive: the read
                        // blocks in AwaitFlushes until the recall times
                        // out, node 2 is declared down and the epoch
                        // aborts. This is the crash-mid-transient path.
                        let _ = a.get(ctx, ACC);
                    }
                    // An uncached chunk homed on the corpse: error, not hang.
                    assert_eq!(
                        a.try_get(ctx, DEAD_CHUNK),
                        Err(DArrayError::NodeUnavailable { node: 2 })
                    );
                    for _ in 0..32 {
                        a.apply(ctx, ACC, add, 1);
                    }
                    if survivor == 1 {
                        a.set(ctx, FLAG, 1);
                    } else {
                        while a.get(ctx, FLAG) != 1 {
                            ctx.sleep(50_000);
                        }
                        // A coherent read recalls node 1's combined
                        // operands: every survivor contribution is in.
                        let total = a.get(ctx, ACC);
                        assert!(
                            (64..=80).contains(&total),
                            "survivor contributions lost: acc={total}"
                        );
                    }
                }
            }
        });
        let s0 = cluster.stats(0);
        let s1 = cluster.stats(1);
        assert!(
            s0.epochs_aborted >= 1,
            "home never aborted the dead node's epoch: {s0:?}"
        );
        assert!(
            s0.sharers_pruned >= 1,
            "home never pruned the dead sharer: {s0:?}"
        );
        assert!(s0.peers_down >= 1, "node 0 never declared node 2 down");
        assert!(s1.peers_down >= 1, "node 1 never declared node 2 down");
        cluster.shutdown(ctx);
    });
}

/// Kill a node in the middle of a KVS-like workload while it HOLDS a write
/// lock: the home must reclaim the orphaned lock and grant it to the
/// waiting survivors, whose blocking `wlock` calls must not hang. The
/// crashed node's un-written-back Dirty increments may be lost (fail-stop)
/// but survivor increments may not.
#[test]
fn kill_mid_kvs_orphaned_lock_is_reclaimed() {
    const HOT: usize = 4; // contended element, homed on node 0
    const FLAG: usize = 700;
    const DEAD_CHUNK: usize = 2560;
    Sim::new(SimConfig::default()).run(|ctx| {
        let mut plan = FaultPlan::new(13);
        plan.crash_at = vec![(2, 1_000_000)];
        let mut fc = FaultConfig::new(plan);
        fc.rpc_timeout_ns = 50_000;
        fc.max_retries = 3;
        let mut cfg = ClusterConfig::with_nodes(NODES);
        cfg.fault = Some(fc);
        let cluster = Cluster::new(ctx, cfg);
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            match env.node {
                2 => {
                    // Completed pre-crash RMWs (their Dirty data may still
                    // die un-written-back), then die HOLDING the lock.
                    for _ in 0..4 {
                        a.wlock(ctx, HOT);
                        let v = a.get(ctx, HOT);
                        a.set(ctx, HOT, v + 1);
                        a.unlock(ctx, HOT);
                    }
                    a.wlock(ctx, HOT);
                    ctx.sleep(2_500_000); // dead while holding the lock
                }
                survivor => {
                    ctx.sleep(2_000_000);
                    // Detection trigger + contract check: the corpse's
                    // chunks fail fast instead of hanging.
                    assert_eq!(
                        a.try_set(ctx, DEAD_CHUNK, 1),
                        Err(DArrayError::NodeUnavailable { node: 2 })
                    );
                    // These block behind the dead holder until the home
                    // reclaims the orphan; a hang would trip the deadlock
                    // detector.
                    for _ in 0..8 {
                        a.wlock(ctx, HOT);
                        let v = a.get(ctx, HOT);
                        a.set(ctx, HOT, v + 1);
                        a.unlock(ctx, HOT);
                    }
                    if survivor == 1 {
                        a.set(ctx, FLAG, 1);
                    } else {
                        while a.get(ctx, FLAG) != 1 {
                            ctx.sleep(50_000);
                        }
                        a.wlock(ctx, HOT);
                        let total = a.get(ctx, HOT);
                        a.unlock(ctx, HOT);
                        assert!(
                            (16..=20).contains(&total),
                            "survivor increments lost: hot={total}"
                        );
                    }
                }
            }
        });
        let s0 = cluster.stats(0);
        assert!(
            s0.orphaned_locks_reclaimed >= 1,
            "home never reclaimed the dead holder's lock: {s0:?}"
        );
        assert!(s0.peers_down >= 1, "node 0 never declared node 2 down");
        cluster.shutdown(ctx);
    });
}
