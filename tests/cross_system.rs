//! Cross-system integration: the same logical workload produces identical
//! data on DArray, GAM and BCL — the systems differ in performance, never
//! in results.

use darray::{ArrayOptions, Cluster, ClusterConfig, Sim, SimConfig};
use gam::{gam_config_with_net, GamCluster};
use rdma_fabric::NetConfig;
use workloads::Rng;

const LEN: usize = 4 * 512;
const WRITES: usize = 400;

/// Deterministic write set: (index, value) pairs, partitioned by writer so
/// the final array state is unambiguous.
fn write_plan(node: usize, nodes: usize) -> Vec<(usize, u64)> {
    let mut rng = Rng::new(500 + node as u64);
    (0..WRITES)
        .map(|_| {
            let mut i = rng.next_below(LEN as u64) as usize;
            // Steer each index to its designated writer.
            i -= i % nodes;
            i += node;
            i %= LEN;
            (i, rng.next_u64())
        })
        .collect()
}

/// The expected final array (last write per index, writer-partitioned).
fn expected(nodes: usize) -> Vec<u64> {
    let mut out = vec![0u64; LEN];
    for n in 0..nodes {
        for (i, v) in write_plan(n, nodes) {
            out[i] = v;
        }
    }
    out
}

#[test]
fn darray_gam_bcl_agree_on_final_state() {
    let nodes = 3;
    let want = expected(nodes);

    // DArray.
    let w1 = want.clone();
    Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, ClusterConfig::test_config(nodes));
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        let wexp = std::sync::Arc::new(w1);
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            for (i, v) in write_plan(env.node, env.nodes) {
                a.set(ctx, i, v);
            }
            env.barrier(ctx);
            for i in 0..LEN {
                assert_eq!(a.get(ctx, i), wexp[i], "darray idx {i}");
            }
        });
        cluster.shutdown(ctx);
    });

    // GAM.
    let w2 = want.clone();
    Sim::new(SimConfig::default()).run(move |ctx| {
        let g = GamCluster::with_config(ctx, gam_config_with_net(nodes, NetConfig::instant()));
        let arr = g.alloc::<u64>(LEN);
        let wexp = std::sync::Arc::new(w2);
        g.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            for (i, v) in write_plan(env.node, env.nodes) {
                a.write(ctx, i, v);
            }
            env.barrier(ctx);
            for i in 0..LEN {
                assert_eq!(a.read(ctx, i), wexp[i], "gam idx {i}");
            }
        });
        g.shutdown(ctx);
    });

    // BCL.
    Sim::new(SimConfig::default()).run(move |ctx| {
        let c = bcl::BclCluster::with_net(nodes, NetConfig::instant());
        let arr = c.alloc::<u64>(LEN);
        let wexp = std::sync::Arc::new(want);
        c.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            for (i, v) in write_plan(env.node, env.nodes) {
                a.write(ctx, i, v);
            }
            env.barrier(ctx);
            for i in 0..LEN {
                assert_eq!(a.read(ctx, i), wexp[i], "bcl idx {i}");
            }
        });
    });
}

#[test]
fn gam_atomics_and_darray_operate_agree() {
    let nodes = 3;
    let per_node = 200u64;
    // DArray via Operate.
    let d = Sim::new(SimConfig::default()).run(move |ctx| {
        let cluster = Cluster::new(ctx, ClusterConfig::test_config(nodes));
        let add = cluster.ops().register_add_u64();
        let arr = cluster.alloc::<u64>(LEN, ArrayOptions::default());
        let out = std::sync::Arc::new(parking_lot_mutex());
        let o2 = out.clone();
        cluster.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let mut rng = Rng::new(env.node as u64);
            for _ in 0..per_node {
                let i = rng.next_below(64) as usize;
                a.apply(ctx, i, add, 1);
            }
            env.barrier(ctx);
            if env.node == 0 {
                let v: Vec<u64> = (0..64).map(|i| a.get(ctx, i)).collect();
                *o2.lock().unwrap() = v;
            }
        });
        cluster.shutdown(ctx);
        let v = out.lock().unwrap().clone();
        v
    });
    // GAM via Atomic.
    let g = Sim::new(SimConfig::default()).run(move |ctx| {
        let gam = GamCluster::with_config(ctx, gam_config_with_net(nodes, NetConfig::instant()));
        let arr = gam.alloc::<u64>(LEN);
        let out = std::sync::Arc::new(parking_lot_mutex());
        let o2 = out.clone();
        gam.run(ctx, 1, move |ctx, env| {
            let a = arr.on(env.node);
            let mut rng = Rng::new(env.node as u64);
            for _ in 0..per_node {
                let i = rng.next_below(64) as usize;
                a.atomic(ctx, i, |x| x + 1);
            }
            env.barrier(ctx);
            if env.node == 0 {
                let v: Vec<u64> = (0..64).map(|i| a.read(ctx, i)).collect();
                *o2.lock().unwrap() = v;
            }
        });
        gam.shutdown(ctx);
        let v = out.lock().unwrap().clone();
        v
    });
    assert_eq!(d, g, "Operate and Atomic must produce identical sums");
    assert_eq!(d.iter().sum::<u64>(), per_node * nodes as u64);
}

fn parking_lot_mutex() -> std::sync::Mutex<Vec<u64>> {
    std::sync::Mutex::new(Vec::new())
}
