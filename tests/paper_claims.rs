//! The paper's headline relative claims, asserted end-to-end at reduced
//! scale. Absolute numbers differ from the authors' testbed; these tests
//! pin the *shapes*: who wins, and roughly by how much.

use darray_bench::graphs::{graph_cell, Algo, GraphSys};
use darray_bench::kvsbench::{kvs_ycsb, KvSys};
use darray_bench::micro::{micro, Op, Pattern, System};
use darray_bench::operate::zipf_update;

#[test]
fn figure1_shape_builtin_pin_darray_gam_bcl() {
    let ops = 8_192;
    let lat = |sys| micro(sys, Op::Read, Pattern::Sequential, 1, 1, 8_192, ops).avg_latency_ns(ops);
    let builtin = lat(System::Builtin);
    let pin = lat(System::DArrayPin);
    let darray = lat(System::DArray);
    let gam = lat(System::Gam);
    assert!(builtin < pin, "builtin {builtin} < pin {pin}");
    assert!(pin < darray, "pin {pin} < darray {darray}");
    assert!(darray < gam, "darray {darray} < gam {gam}");
    // GAM's local access is roughly an order of magnitude above DArray's.
    assert!(gam > darray * 4.0);
}

#[test]
fn figure15_pin_speedup_in_paper_range() {
    // Paper: 1.8x – 2.9x across node counts.
    for nodes in [2usize, 4] {
        let plain = micro(
            System::DArray,
            Op::Read,
            Pattern::Sequential,
            nodes,
            1,
            8_192,
            20_000,
        );
        let pin = micro(
            System::DArrayPin,
            Op::Read,
            Pattern::Sequential,
            nodes,
            1,
            8_192,
            20_000,
        );
        let speedup = pin.mops() / plain.mops();
        assert!(
            (1.5..=4.0).contains(&speedup),
            "{nodes} nodes: pin speedup {speedup}"
        );
    }
}

#[test]
fn figure14_operate_dominates_locks_and_scales() {
    let op1 = zipf_update(1, 16_384, 3_000, true);
    let op4 = zipf_update(4, 16_384, 3_000, true);
    let lk4 = zipf_update(4, 16_384, 600, false);
    // Operate throughput grows with nodes; lock-based is far behind.
    assert!(
        op4.mops() > op1.mops() * 1.5,
        "{} vs {}",
        op4.mops(),
        op1.mops()
    );
    assert!(
        op4.mops() > lk4.mops() * 20.0,
        "{} vs {}",
        op4.mops(),
        lk4.mops()
    );
}

#[test]
fn figure16_shape_gam_far_behind_gemini_crossover() {
    // GAM orders of magnitude behind DArray on graphs (multi-node); the
    // full Figure 16 shows 3 orders at larger scale and node counts.
    let d = graph_cell(GraphSys::DArray, Algo::PageRank, 3, 12, 4, 2);
    let g = graph_cell(GraphSys::Gam, Algo::PageRank, 3, 12, 4, 2);
    assert!(g > d * 30, "gam {g} vs darray {d}");
    // Gemini wins on a single node.
    let pin1 = graph_cell(GraphSys::DArrayPin, Algo::PageRank, 1, 11, 4, 2);
    let gem1 = graph_cell(GraphSys::Gemini, Algo::PageRank, 1, 11, 4, 2);
    assert!(gem1 < pin1, "gemini {gem1} vs pin {pin1} on one node");
}

#[test]
fn figure17_kvs_get_heavy_gap_exceeds_put_heavy_gap() {
    let d_get = kvs_ycsb(KvSys::DArray, 2, 1, 1.0, 256, 400);
    let g_get = kvs_ycsb(KvSys::Gam, 2, 1, 1.0, 256, 400);
    let d_put = kvs_ycsb(KvSys::DArray, 2, 1, 0.5, 256, 300);
    let g_put = kvs_ycsb(KvSys::Gam, 2, 1, 0.5, 256, 300);
    let get_ratio = d_get.kops() / g_get.kops();
    let put_ratio = d_put.kops() / g_put.kops();
    assert!(get_ratio > 3.0, "get-heavy speedup {get_ratio}");
    assert!(put_ratio > 1.0, "put-heavy speedup {put_ratio}");
    assert!(
        get_ratio > put_ratio,
        "paper: the gap shrinks under put contention ({get_ratio} vs {put_ratio})"
    );
}

#[test]
fn figure18_bcl_flat_darray_grows_with_nodes() {
    let ops = 1_500;
    let d1 = micro(System::DArray, Op::Read, Pattern::Random, 1, 1, 65_536, ops);
    let d4 = micro(System::DArray, Op::Read, Pattern::Random, 4, 1, 65_536, ops);
    let b2 = micro(System::Bcl, Op::Read, Pattern::Random, 2, 1, 65_536, 400);
    let b4 = micro(System::Bcl, Op::Read, Pattern::Random, 4, 1, 65_536, 400);
    // DArray random latency grows once remote chunks dominate.
    assert!(
        d4.avg_latency_ns(ops) > d1.avg_latency_ns(ops) * 3.0,
        "darray {} -> {}",
        d1.avg_latency_ns(ops),
        d4.avg_latency_ns(ops)
    );
    // BCL stays near the round trip regardless of node count.
    let l2 = b2.avg_latency_ns(400);
    let l4 = b4.avg_latency_ns(400);
    assert!((l4 - l2).abs() / l2 < 0.8, "bcl {l2} vs {l4}");
}
