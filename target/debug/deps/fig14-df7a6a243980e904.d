/root/repo/target/debug/deps/fig14-df7a6a243980e904.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-df7a6a243980e904.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
