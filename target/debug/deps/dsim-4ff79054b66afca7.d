/root/repo/target/debug/deps/dsim-4ff79054b66afca7.d: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdsim-4ff79054b66afca7.rmeta: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/ctx.rs:
crates/sim/src/mailbox.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
