/root/repo/target/debug/deps/darray_repro-f16ee3e9a8644c78.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdarray_repro-f16ee3e9a8644c78.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
