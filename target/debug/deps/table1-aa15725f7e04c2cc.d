/root/repo/target/debug/deps/table1-aa15725f7e04c2cc.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-aa15725f7e04c2cc: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
