/root/repo/target/debug/deps/rdma_fabric-de91081d8c948021.d: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

/root/repo/target/debug/deps/rdma_fabric-de91081d8c948021: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

crates/fabric/src/lib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/fabric.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/net.rs:
crates/fabric/src/region.rs:
