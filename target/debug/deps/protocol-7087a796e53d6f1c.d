/root/repo/target/debug/deps/protocol-7087a796e53d6f1c.d: crates/core/tests/protocol.rs

/root/repo/target/debug/deps/protocol-7087a796e53d6f1c: crates/core/tests/protocol.rs

crates/core/tests/protocol.rs:
