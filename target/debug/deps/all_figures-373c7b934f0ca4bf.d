/root/repo/target/debug/deps/all_figures-373c7b934f0ca4bf.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-373c7b934f0ca4bf: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
