/root/repo/target/debug/deps/protocol_edge-30605c519e161c2a.d: crates/core/tests/protocol_edge.rs

/root/repo/target/debug/deps/protocol_edge-30605c519e161c2a: crates/core/tests/protocol_edge.rs

crates/core/tests/protocol_edge.rs:
