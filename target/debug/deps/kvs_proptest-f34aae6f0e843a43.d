/root/repo/target/debug/deps/kvs_proptest-f34aae6f0e843a43.d: crates/kvs/tests/kvs_proptest.rs

/root/repo/target/debug/deps/kvs_proptest-f34aae6f0e843a43: crates/kvs/tests/kvs_proptest.rs

crates/kvs/tests/kvs_proptest.rs:
