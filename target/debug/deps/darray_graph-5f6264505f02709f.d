/root/repo/target/debug/deps/darray_graph-5f6264505f02709f.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs

/root/repo/target/debug/deps/libdarray_graph-5f6264505f02709f.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/csr.rs:
crates/graph/src/gam_engine.rs:
crates/graph/src/gemini.rs:
crates/graph/src/local.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/reference.rs:
crates/graph/src/rmat.rs:
crates/graph/src/sssp.rs:
