/root/repo/target/debug/deps/fig17-5f3005c83618dbaf.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-5f3005c83618dbaf: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
