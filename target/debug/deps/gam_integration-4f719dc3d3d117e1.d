/root/repo/target/debug/deps/gam_integration-4f719dc3d3d117e1.d: crates/gam/tests/gam_integration.rs

/root/repo/target/debug/deps/gam_integration-4f719dc3d3d117e1: crates/gam/tests/gam_integration.rs

crates/gam/tests/gam_integration.rs:
