/root/repo/target/debug/deps/full_stack-d6f72d3a05c3ca07.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-d6f72d3a05c3ca07: tests/full_stack.rs

tests/full_stack.rs:
