/root/repo/target/debug/deps/darray_kvs-43de2f52d91e6b96.d: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

/root/repo/target/debug/deps/libdarray_kvs-43de2f52d91e6b96.rlib: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

/root/repo/target/debug/deps/libdarray_kvs-43de2f52d91e6b96.rmeta: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

crates/kvs/src/lib.rs:
crates/kvs/src/backend.rs:
crates/kvs/src/entry.rs:
crates/kvs/src/hash.rs:
crates/kvs/src/slab.rs:
crates/kvs/src/store.rs:
