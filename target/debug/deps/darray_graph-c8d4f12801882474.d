/root/repo/target/debug/deps/darray_graph-c8d4f12801882474.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs Cargo.toml

/root/repo/target/debug/deps/libdarray_graph-c8d4f12801882474.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/csr.rs:
crates/graph/src/gam_engine.rs:
crates/graph/src/gemini.rs:
crates/graph/src/local.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/reference.rs:
crates/graph/src/rmat.rs:
crates/graph/src/sssp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
