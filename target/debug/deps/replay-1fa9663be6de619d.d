/root/repo/target/debug/deps/replay-1fa9663be6de619d.d: crates/core/tests/replay.rs Cargo.toml

/root/repo/target/debug/deps/libreplay-1fa9663be6de619d.rmeta: crates/core/tests/replay.rs Cargo.toml

crates/core/tests/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
