/root/repo/target/debug/deps/ablations-d49d80bf163bb104.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-d49d80bf163bb104: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
