/root/repo/target/debug/deps/rdma_fabric-3ce7735853ffda3e.d: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs Cargo.toml

/root/repo/target/debug/deps/librdma_fabric-3ce7735853ffda3e.rmeta: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/fabric.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/net.rs:
crates/fabric/src/region.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
