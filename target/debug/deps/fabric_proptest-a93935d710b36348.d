/root/repo/target/debug/deps/fabric_proptest-a93935d710b36348.d: crates/fabric/tests/fabric_proptest.rs

/root/repo/target/debug/deps/fabric_proptest-a93935d710b36348: crates/fabric/tests/fabric_proptest.rs

crates/fabric/tests/fabric_proptest.rs:
