/root/repo/target/debug/deps/protocol_model-c2b5f919f4b3ab4e.d: crates/core/tests/protocol_model.rs

/root/repo/target/debug/deps/protocol_model-c2b5f919f4b3ab4e: crates/core/tests/protocol_model.rs

crates/core/tests/protocol_model.rs:
