/root/repo/target/debug/deps/gam-02438a44c5ea93e1.d: crates/gam/src/lib.rs

/root/repo/target/debug/deps/libgam-02438a44c5ea93e1.rlib: crates/gam/src/lib.rs

/root/repo/target/debug/deps/libgam-02438a44c5ea93e1.rmeta: crates/gam/src/lib.rs

crates/gam/src/lib.rs:
