/root/repo/target/debug/deps/stress-0f12855bb9f532f3.d: crates/sim/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-0f12855bb9f532f3.rmeta: crates/sim/tests/stress.rs Cargo.toml

crates/sim/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
