/root/repo/target/debug/deps/bcl-599893466bedc883.d: crates/bcl/src/lib.rs

/root/repo/target/debug/deps/bcl-599893466bedc883: crates/bcl/src/lib.rs

crates/bcl/src/lib.rs:
