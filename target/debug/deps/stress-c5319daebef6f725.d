/root/repo/target/debug/deps/stress-c5319daebef6f725.d: crates/sim/tests/stress.rs

/root/repo/target/debug/deps/stress-c5319daebef6f725: crates/sim/tests/stress.rs

crates/sim/tests/stress.rs:
