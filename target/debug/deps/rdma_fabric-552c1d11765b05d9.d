/root/repo/target/debug/deps/rdma_fabric-552c1d11765b05d9.d: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

/root/repo/target/debug/deps/librdma_fabric-552c1d11765b05d9.rlib: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

/root/repo/target/debug/deps/librdma_fabric-552c1d11765b05d9.rmeta: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

crates/fabric/src/lib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/fabric.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/net.rs:
crates/fabric/src/region.rs:
