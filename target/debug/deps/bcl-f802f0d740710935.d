/root/repo/target/debug/deps/bcl-f802f0d740710935.d: crates/bcl/src/lib.rs

/root/repo/target/debug/deps/libbcl-f802f0d740710935.rmeta: crates/bcl/src/lib.rs

crates/bcl/src/lib.rs:
