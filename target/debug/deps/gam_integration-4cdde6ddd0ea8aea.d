/root/repo/target/debug/deps/gam_integration-4cdde6ddd0ea8aea.d: crates/gam/tests/gam_integration.rs Cargo.toml

/root/repo/target/debug/deps/libgam_integration-4cdde6ddd0ea8aea.rmeta: crates/gam/tests/gam_integration.rs Cargo.toml

crates/gam/tests/gam_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
