/root/repo/target/debug/deps/fig15-296fa5141e036e48.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-296fa5141e036e48: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
