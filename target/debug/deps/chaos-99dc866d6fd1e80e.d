/root/repo/target/debug/deps/chaos-99dc866d6fd1e80e.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-99dc866d6fd1e80e: tests/chaos.rs

tests/chaos.rs:
