/root/repo/target/debug/deps/darray-fcbd75f27b85de4a.d: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/bulk.rs crates/core/src/cache.rs crates/core/src/cluster.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/dentry.rs crates/core/src/element.rs crates/core/src/error.rs crates/core/src/layout.rs crates/core/src/lock.rs crates/core/src/msg.rs crates/core/src/op.rs crates/core/src/pin.rs crates/core/src/protocol/mod.rs crates/core/src/protocol/cache.rs crates/core/src/protocol/home.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/locks.rs crates/core/src/shared.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/darray-fcbd75f27b85de4a: crates/core/src/lib.rs crates/core/src/array.rs crates/core/src/bulk.rs crates/core/src/cache.rs crates/core/src/cluster.rs crates/core/src/comm.rs crates/core/src/config.rs crates/core/src/dentry.rs crates/core/src/element.rs crates/core/src/error.rs crates/core/src/layout.rs crates/core/src/lock.rs crates/core/src/msg.rs crates/core/src/op.rs crates/core/src/pin.rs crates/core/src/protocol/mod.rs crates/core/src/protocol/cache.rs crates/core/src/protocol/home.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/locks.rs crates/core/src/shared.rs crates/core/src/state.rs crates/core/src/stats.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/array.rs:
crates/core/src/bulk.rs:
crates/core/src/cache.rs:
crates/core/src/cluster.rs:
crates/core/src/comm.rs:
crates/core/src/config.rs:
crates/core/src/dentry.rs:
crates/core/src/element.rs:
crates/core/src/error.rs:
crates/core/src/layout.rs:
crates/core/src/lock.rs:
crates/core/src/msg.rs:
crates/core/src/op.rs:
crates/core/src/pin.rs:
crates/core/src/protocol/mod.rs:
crates/core/src/protocol/cache.rs:
crates/core/src/protocol/home.rs:
crates/core/src/runtime/mod.rs:
crates/core/src/runtime/locks.rs:
crates/core/src/shared.rs:
crates/core/src/state.rs:
crates/core/src/stats.rs:
crates/core/src/trace.rs:
