/root/repo/target/debug/deps/workloads-0fdb7d95e23aca01.d: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/workloads-0fdb7d95e23aca01: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
