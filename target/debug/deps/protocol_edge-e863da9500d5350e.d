/root/repo/target/debug/deps/protocol_edge-e863da9500d5350e.d: crates/core/tests/protocol_edge.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_edge-e863da9500d5350e.rmeta: crates/core/tests/protocol_edge.rs Cargo.toml

crates/core/tests/protocol_edge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
