/root/repo/target/debug/deps/rdma_fabric-e1fd2e60d372b6d6.d: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

/root/repo/target/debug/deps/librdma_fabric-e1fd2e60d372b6d6.rmeta: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

crates/fabric/src/lib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/fabric.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/net.rs:
crates/fabric/src/region.rs:
