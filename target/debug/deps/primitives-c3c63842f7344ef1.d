/root/repo/target/debug/deps/primitives-c3c63842f7344ef1.d: crates/bench/benches/primitives.rs Cargo.toml

/root/repo/target/debug/deps/libprimitives-c3c63842f7344ef1.rmeta: crates/bench/benches/primitives.rs Cargo.toml

crates/bench/benches/primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
