/root/repo/target/debug/deps/darray_bench-feecf915835bf1ed.d: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdarray_bench-feecf915835bf1ed.rlib: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdarray_bench-feecf915835bf1ed.rmeta: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/graphs.rs:
crates/bench/src/kvsbench.rs:
crates/bench/src/micro.rs:
crates/bench/src/operate.rs:
crates/bench/src/report.rs:
