/root/repo/target/debug/deps/fig15-08c60011d6482ddc.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-08c60011d6482ddc.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
