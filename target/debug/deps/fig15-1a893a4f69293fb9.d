/root/repo/target/debug/deps/fig15-1a893a4f69293fb9.d: crates/bench/src/bin/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-1a893a4f69293fb9.rmeta: crates/bench/src/bin/fig15.rs Cargo.toml

crates/bench/src/bin/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
