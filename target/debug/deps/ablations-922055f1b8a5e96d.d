/root/repo/target/debug/deps/ablations-922055f1b8a5e96d.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-922055f1b8a5e96d.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
