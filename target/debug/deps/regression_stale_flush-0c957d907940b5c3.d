/root/repo/target/debug/deps/regression_stale_flush-0c957d907940b5c3.d: crates/core/tests/regression_stale_flush.rs

/root/repo/target/debug/deps/regression_stale_flush-0c957d907940b5c3: crates/core/tests/regression_stale_flush.rs

crates/core/tests/regression_stale_flush.rs:
