/root/repo/target/debug/deps/bcl-b33ef662650aad64.d: crates/bcl/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbcl-b33ef662650aad64.rmeta: crates/bcl/src/lib.rs Cargo.toml

crates/bcl/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
