/root/repo/target/debug/deps/workloads-555beb58180b518c.d: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-555beb58180b518c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
