/root/repo/target/debug/deps/darray_kvs-76cc4a8688d5126a.d: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

/root/repo/target/debug/deps/darray_kvs-76cc4a8688d5126a: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

crates/kvs/src/lib.rs:
crates/kvs/src/backend.rs:
crates/kvs/src/entry.rs:
crates/kvs/src/hash.rs:
crates/kvs/src/slab.rs:
crates/kvs/src/store.rs:
