/root/repo/target/debug/deps/replay-30c426a449fdf99f.d: crates/core/tests/replay.rs

/root/repo/target/debug/deps/replay-30c426a449fdf99f: crates/core/tests/replay.rs

crates/core/tests/replay.rs:
