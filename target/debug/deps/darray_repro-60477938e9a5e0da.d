/root/repo/target/debug/deps/darray_repro-60477938e9a5e0da.d: src/lib.rs

/root/repo/target/debug/deps/libdarray_repro-60477938e9a5e0da.rlib: src/lib.rs

/root/repo/target/debug/deps/libdarray_repro-60477938e9a5e0da.rmeta: src/lib.rs

src/lib.rs:
