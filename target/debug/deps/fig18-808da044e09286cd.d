/root/repo/target/debug/deps/fig18-808da044e09286cd.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-808da044e09286cd: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
