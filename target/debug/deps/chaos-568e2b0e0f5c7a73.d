/root/repo/target/debug/deps/chaos-568e2b0e0f5c7a73.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-568e2b0e0f5c7a73.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
