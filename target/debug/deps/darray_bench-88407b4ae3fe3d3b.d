/root/repo/target/debug/deps/darray_bench-88407b4ae3fe3d3b.d: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/darray_bench-88407b4ae3fe3d3b: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/graphs.rs:
crates/bench/src/kvsbench.rs:
crates/bench/src/micro.rs:
crates/bench/src/operate.rs:
crates/bench/src/report.rs:
