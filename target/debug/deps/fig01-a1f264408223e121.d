/root/repo/target/debug/deps/fig01-a1f264408223e121.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-a1f264408223e121: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
