/root/repo/target/debug/deps/fabric_proptest-8fce59cf41d7d3d9.d: crates/fabric/tests/fabric_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libfabric_proptest-8fce59cf41d7d3d9.rmeta: crates/fabric/tests/fabric_proptest.rs Cargo.toml

crates/fabric/tests/fabric_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
