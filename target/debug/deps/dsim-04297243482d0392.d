/root/repo/target/debug/deps/dsim-04297243482d0392.d: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdsim-04297243482d0392.rmeta: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/ctx.rs:
crates/sim/src/mailbox.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
