/root/repo/target/debug/deps/dsim-1e5e475308cf1473.d: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdsim-1e5e475308cf1473.rlib: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdsim-1e5e475308cf1473.rmeta: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/ctx.rs:
crates/sim/src/mailbox.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
