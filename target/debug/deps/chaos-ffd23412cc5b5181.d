/root/repo/target/debug/deps/chaos-ffd23412cc5b5181.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-ffd23412cc5b5181: tests/chaos.rs

tests/chaos.rs:
