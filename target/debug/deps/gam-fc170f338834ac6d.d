/root/repo/target/debug/deps/gam-fc170f338834ac6d.d: crates/gam/src/lib.rs

/root/repo/target/debug/deps/libgam-fc170f338834ac6d.rmeta: crates/gam/src/lib.rs

crates/gam/src/lib.rs:
