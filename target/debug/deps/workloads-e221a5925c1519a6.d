/root/repo/target/debug/deps/workloads-e221a5925c1519a6.d: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-e221a5925c1519a6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
