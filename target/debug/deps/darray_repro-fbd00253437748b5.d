/root/repo/target/debug/deps/darray_repro-fbd00253437748b5.d: src/lib.rs

/root/repo/target/debug/deps/darray_repro-fbd00253437748b5: src/lib.rs

src/lib.rs:
