/root/repo/target/debug/deps/regression_stale_flush-cf0633b20cb87edf.d: crates/core/tests/regression_stale_flush.rs Cargo.toml

/root/repo/target/debug/deps/libregression_stale_flush-cf0633b20cb87edf.rmeta: crates/core/tests/regression_stale_flush.rs Cargo.toml

crates/core/tests/regression_stale_flush.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
