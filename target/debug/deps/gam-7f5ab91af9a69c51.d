/root/repo/target/debug/deps/gam-7f5ab91af9a69c51.d: crates/gam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgam-7f5ab91af9a69c51.rmeta: crates/gam/src/lib.rs Cargo.toml

crates/gam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
