/root/repo/target/debug/deps/bcl-b9897d11c208f5e4.d: crates/bcl/src/lib.rs

/root/repo/target/debug/deps/libbcl-b9897d11c208f5e4.rlib: crates/bcl/src/lib.rs

/root/repo/target/debug/deps/libbcl-b9897d11c208f5e4.rmeta: crates/bcl/src/lib.rs

crates/bcl/src/lib.rs:
