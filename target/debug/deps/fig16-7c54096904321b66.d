/root/repo/target/debug/deps/fig16-7c54096904321b66.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-7c54096904321b66: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
