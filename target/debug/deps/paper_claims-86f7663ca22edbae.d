/root/repo/target/debug/deps/paper_claims-86f7663ca22edbae.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-86f7663ca22edbae: tests/paper_claims.rs

tests/paper_claims.rs:
