/root/repo/target/debug/deps/gam-9ac00c0005e8b017.d: crates/gam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgam-9ac00c0005e8b017.rmeta: crates/gam/src/lib.rs Cargo.toml

crates/gam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
