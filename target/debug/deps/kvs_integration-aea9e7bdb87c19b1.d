/root/repo/target/debug/deps/kvs_integration-aea9e7bdb87c19b1.d: crates/kvs/tests/kvs_integration.rs Cargo.toml

/root/repo/target/debug/deps/libkvs_integration-aea9e7bdb87c19b1.rmeta: crates/kvs/tests/kvs_integration.rs Cargo.toml

crates/kvs/tests/kvs_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
