/root/repo/target/debug/deps/workloads-0f45469979902533.d: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/libworkloads-0f45469979902533.rlib: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/libworkloads-0f45469979902533.rmeta: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
