/root/repo/target/debug/deps/kvs_integration-71273ee230f15dd2.d: crates/kvs/tests/kvs_integration.rs

/root/repo/target/debug/deps/kvs_integration-71273ee230f15dd2: crates/kvs/tests/kvs_integration.rs

crates/kvs/tests/kvs_integration.rs:
