/root/repo/target/debug/deps/darray_bench-c3d6d661af198966.d: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libdarray_bench-c3d6d661af198966.rmeta: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/graphs.rs:
crates/bench/src/kvsbench.rs:
crates/bench/src/micro.rs:
crates/bench/src/operate.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
