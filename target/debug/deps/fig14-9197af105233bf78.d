/root/repo/target/debug/deps/fig14-9197af105233bf78.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-9197af105233bf78: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
