/root/repo/target/debug/deps/cross_system-88ce6cb63176dab4.d: tests/cross_system.rs Cargo.toml

/root/repo/target/debug/deps/libcross_system-88ce6cb63176dab4.rmeta: tests/cross_system.rs Cargo.toml

tests/cross_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
