/root/repo/target/debug/deps/gam-e9f256a65697b2c9.d: crates/gam/src/lib.rs

/root/repo/target/debug/deps/gam-e9f256a65697b2c9: crates/gam/src/lib.rs

crates/gam/src/lib.rs:
