/root/repo/target/debug/deps/darray_repro-dd4c617409cd34af.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdarray_repro-dd4c617409cd34af.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
