/root/repo/target/debug/deps/protocol-f6b87bb22fde51ef.d: crates/core/tests/protocol.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol-f6b87bb22fde51ef.rmeta: crates/core/tests/protocol.rs Cargo.toml

crates/core/tests/protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
