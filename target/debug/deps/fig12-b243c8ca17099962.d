/root/repo/target/debug/deps/fig12-b243c8ca17099962.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-b243c8ca17099962: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
