/root/repo/target/debug/deps/darray_kvs-896d0a6ef67b1d3a.d: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

/root/repo/target/debug/deps/libdarray_kvs-896d0a6ef67b1d3a.rmeta: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

crates/kvs/src/lib.rs:
crates/kvs/src/backend.rs:
crates/kvs/src/entry.rs:
crates/kvs/src/hash.rs:
crates/kvs/src/slab.rs:
crates/kvs/src/store.rs:
