/root/repo/target/debug/deps/bcl-2a7e35f3b434b2af.d: crates/bcl/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbcl-2a7e35f3b434b2af.rmeta: crates/bcl/src/lib.rs Cargo.toml

crates/bcl/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
