/root/repo/target/debug/deps/fig13-f95ddfa6fdc85120.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-f95ddfa6fdc85120: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
