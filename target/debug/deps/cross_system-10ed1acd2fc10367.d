/root/repo/target/debug/deps/cross_system-10ed1acd2fc10367.d: tests/cross_system.rs

/root/repo/target/debug/deps/cross_system-10ed1acd2fc10367: tests/cross_system.rs

tests/cross_system.rs:
