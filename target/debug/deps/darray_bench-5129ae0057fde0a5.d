/root/repo/target/debug/deps/darray_bench-5129ae0057fde0a5.d: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libdarray_bench-5129ae0057fde0a5.rmeta: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/graphs.rs:
crates/bench/src/kvsbench.rs:
crates/bench/src/micro.rs:
crates/bench/src/operate.rs:
crates/bench/src/report.rs:
