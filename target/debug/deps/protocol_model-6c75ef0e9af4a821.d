/root/repo/target/debug/deps/protocol_model-6c75ef0e9af4a821.d: crates/core/tests/protocol_model.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_model-6c75ef0e9af4a821.rmeta: crates/core/tests/protocol_model.rs Cargo.toml

crates/core/tests/protocol_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
