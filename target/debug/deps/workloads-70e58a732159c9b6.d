/root/repo/target/debug/deps/workloads-70e58a732159c9b6.d: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/libworkloads-70e58a732159c9b6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
