/root/repo/target/debug/deps/darray_repro-9a7b6f1b41b97e37.d: src/lib.rs

/root/repo/target/debug/deps/libdarray_repro-9a7b6f1b41b97e37.rlib: src/lib.rs

/root/repo/target/debug/deps/libdarray_repro-9a7b6f1b41b97e37.rmeta: src/lib.rs

src/lib.rs:
