/root/repo/target/debug/deps/darray_kvs-d246642443684089.d: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libdarray_kvs-d246642443684089.rmeta: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs Cargo.toml

crates/kvs/src/lib.rs:
crates/kvs/src/backend.rs:
crates/kvs/src/entry.rs:
crates/kvs/src/hash.rs:
crates/kvs/src/slab.rs:
crates/kvs/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
