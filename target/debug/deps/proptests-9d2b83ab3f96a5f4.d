/root/repo/target/debug/deps/proptests-9d2b83ab3f96a5f4.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9d2b83ab3f96a5f4: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
