/root/repo/target/debug/deps/kvs_proptest-228ab63239d65058.d: crates/kvs/tests/kvs_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libkvs_proptest-228ab63239d65058.rmeta: crates/kvs/tests/kvs_proptest.rs Cargo.toml

crates/kvs/tests/kvs_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
