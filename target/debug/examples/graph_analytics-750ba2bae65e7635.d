/root/repo/target/debug/examples/graph_analytics-750ba2bae65e7635.d: examples/graph_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libgraph_analytics-750ba2bae65e7635.rmeta: examples/graph_analytics.rs Cargo.toml

examples/graph_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
