/root/repo/target/debug/examples/graph_analytics-09d231100b01bcc0.d: examples/graph_analytics.rs

/root/repo/target/debug/examples/graph_analytics-09d231100b01bcc0: examples/graph_analytics.rs

examples/graph_analytics.rs:
