/root/repo/target/debug/examples/kv_store-ea59dba23963b171.d: examples/kv_store.rs Cargo.toml

/root/repo/target/debug/examples/libkv_store-ea59dba23963b171.rmeta: examples/kv_store.rs Cargo.toml

examples/kv_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
