/root/repo/target/debug/examples/coherence_inspector-bf8b244a3ce5a353.d: examples/coherence_inspector.rs

/root/repo/target/debug/examples/coherence_inspector-bf8b244a3ce5a353: examples/coherence_inspector.rs

examples/coherence_inspector.rs:
