/root/repo/target/debug/examples/kv_store-3558b10bf365ec18.d: examples/kv_store.rs Cargo.toml

/root/repo/target/debug/examples/libkv_store-3558b10bf365ec18.rmeta: examples/kv_store.rs Cargo.toml

examples/kv_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
