/root/repo/target/debug/examples/custom_partition-8c737ef8a6452b46.d: examples/custom_partition.rs

/root/repo/target/debug/examples/custom_partition-8c737ef8a6452b46: examples/custom_partition.rs

examples/custom_partition.rs:
