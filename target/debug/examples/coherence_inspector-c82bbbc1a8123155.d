/root/repo/target/debug/examples/coherence_inspector-c82bbbc1a8123155.d: examples/coherence_inspector.rs Cargo.toml

/root/repo/target/debug/examples/libcoherence_inspector-c82bbbc1a8123155.rmeta: examples/coherence_inspector.rs Cargo.toml

examples/coherence_inspector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
