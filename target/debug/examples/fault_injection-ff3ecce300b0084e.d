/root/repo/target/debug/examples/fault_injection-ff3ecce300b0084e.d: examples/fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libfault_injection-ff3ecce300b0084e.rmeta: examples/fault_injection.rs Cargo.toml

examples/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
