/root/repo/target/debug/examples/fault_injection-1983e1adca41f032.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-1983e1adca41f032: examples/fault_injection.rs

examples/fault_injection.rs:
