/root/repo/target/debug/examples/custom_partition-91b6d69b81c2e6ac.d: examples/custom_partition.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_partition-91b6d69b81c2e6ac.rmeta: examples/custom_partition.rs Cargo.toml

examples/custom_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
