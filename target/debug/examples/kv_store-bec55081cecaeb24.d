/root/repo/target/debug/examples/kv_store-bec55081cecaeb24.d: examples/kv_store.rs

/root/repo/target/debug/examples/kv_store-bec55081cecaeb24: examples/kv_store.rs

examples/kv_store.rs:
