/root/repo/target/debug/examples/quickstart-fbea7d592f49ae05.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fbea7d592f49ae05: examples/quickstart.rs

examples/quickstart.rs:
