(function() {
    const implementors = Object.fromEntries([["darray",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"enum\" href=\"darray/enum.LockKind.html\" title=\"enum darray::LockKind\">LockKind</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"struct\" href=\"darray/struct.OpId.html\" title=\"struct darray::OpId\">OpId</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[490]}