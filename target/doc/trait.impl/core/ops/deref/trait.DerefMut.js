(function() {
    const implementors = Object.fromEntries([["parking_lot",[["impl&lt;T: ?<a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/marker/trait.Sized.html\" title=\"trait core::marker::Sized\">Sized</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/deref/trait.DerefMut.html\" title=\"trait core::ops::deref::DerefMut\">DerefMut</a> for <a class=\"struct\" href=\"parking_lot/struct.MutexGuard.html\" title=\"struct parking_lot::MutexGuard\">MutexGuard</a>&lt;'_, T&gt;",0],["impl&lt;T: ?<a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/marker/trait.Sized.html\" title=\"trait core::marker::Sized\">Sized</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/deref/trait.DerefMut.html\" title=\"trait core::ops::deref::DerefMut\">DerefMut</a> for <a class=\"struct\" href=\"parking_lot/struct.RwLockWriteGuard.html\" title=\"struct parking_lot::RwLockWriteGuard\">RwLockWriteGuard</a>&lt;'_, T&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[929]}