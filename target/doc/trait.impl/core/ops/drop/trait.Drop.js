(function() {
    const implementors = Object.fromEntries([["darray",[["impl&lt;T: <a class=\"trait\" href=\"darray/trait.Element.html\" title=\"trait darray::Element\">Element</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"darray/struct.Pinned.html\" title=\"struct darray::Pinned\">Pinned</a>&lt;T&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[380]}