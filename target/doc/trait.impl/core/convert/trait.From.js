(function() {
    const implementors = Object.fromEntries([["proptest",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.usize.html\">usize</a>&gt; for <a class=\"struct\" href=\"proptest/collection/struct.SizeRange.html\" title=\"struct proptest::collection::SizeRange\">SizeRange</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"struct\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/range/struct.Range.html\" title=\"struct core::ops::range::Range\">Range</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.usize.html\">usize</a>&gt;&gt; for <a class=\"struct\" href=\"proptest/collection/struct.SizeRange.html\" title=\"struct proptest::collection::SizeRange\">SizeRange</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[949]}