(function() {
    const implementors = Object.fromEntries([["darray",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"darray/enum.ConfigError.html\" title=\"enum darray::ConfigError\">ConfigError</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"darray/enum.DArrayError.html\" title=\"enum darray::DArrayError\">DArrayError</a>",0]]],["proptest",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"proptest/test_runner/struct.TestCaseError.html\" title=\"struct proptest::test_runner::TestCaseError\">TestCaseError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[524,312]}