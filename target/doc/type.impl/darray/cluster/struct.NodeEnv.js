(function() {
    var type_impls = Object.fromEntries([["darray_graph",[["<details class=\"toggle implementors-toggle\" open><summary><section id=\"impl-NodeEnv\" class=\"impl\"><a href=\"#impl-NodeEnv\" class=\"anchor\">§</a><h3 class=\"code-header\">impl NodeEnv</h3></section></summary><div class=\"impl-items\"><details class=\"toggle method-toggle\" open><summary><section id=\"method.barrier\" class=\"method\"><h4 class=\"code-header\">pub fn <a href=\"#method.barrier\" class=\"fn\">barrier</a>(&amp;self, ctx: &amp;mut Ctx)</h4></section></summary><div class=\"docblock\"><p>Global barrier over every application thread of this <code>run</code>.</p>\n</div></details></div></details>",0,"darray_graph::cc::Env"]]]]);
    if (window.register_type_impls) {
        window.register_type_impls(type_impls);
    } else {
        window.pending_type_impls = type_impls;
    }
})()
//{"start":55,"fragment_lengths":[668]}