/root/repo/target/release/examples/coherence_inspector-e69ac20ddb538ae5.d: examples/coherence_inspector.rs

/root/repo/target/release/examples/coherence_inspector-e69ac20ddb538ae5: examples/coherence_inspector.rs

examples/coherence_inspector.rs:
