/root/repo/target/release/examples/custom_partition-477bb626d6a3af92.d: examples/custom_partition.rs

/root/repo/target/release/examples/custom_partition-477bb626d6a3af92: examples/custom_partition.rs

examples/custom_partition.rs:
