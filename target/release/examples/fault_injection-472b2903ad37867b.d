/root/repo/target/release/examples/fault_injection-472b2903ad37867b.d: examples/fault_injection.rs

/root/repo/target/release/examples/fault_injection-472b2903ad37867b: examples/fault_injection.rs

examples/fault_injection.rs:
