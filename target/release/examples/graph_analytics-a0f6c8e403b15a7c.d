/root/repo/target/release/examples/graph_analytics-a0f6c8e403b15a7c.d: examples/graph_analytics.rs

/root/repo/target/release/examples/graph_analytics-a0f6c8e403b15a7c: examples/graph_analytics.rs

examples/graph_analytics.rs:
