/root/repo/target/release/examples/probe_scratch-5091c30249d3453b.d: examples/probe_scratch.rs

/root/repo/target/release/examples/probe_scratch-5091c30249d3453b: examples/probe_scratch.rs

examples/probe_scratch.rs:
