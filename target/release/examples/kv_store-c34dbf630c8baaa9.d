/root/repo/target/release/examples/kv_store-c34dbf630c8baaa9.d: examples/kv_store.rs

/root/repo/target/release/examples/kv_store-c34dbf630c8baaa9: examples/kv_store.rs

examples/kv_store.rs:
