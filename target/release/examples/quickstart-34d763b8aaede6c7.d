/root/repo/target/release/examples/quickstart-34d763b8aaede6c7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-34d763b8aaede6c7: examples/quickstart.rs

examples/quickstart.rs:
