/root/repo/target/release/deps/ablations-8b7786f0dd5f33cc.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-8b7786f0dd5f33cc: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
