/root/repo/target/release/deps/stress-2cf2b110f9117987.d: crates/sim/tests/stress.rs

/root/repo/target/release/deps/stress-2cf2b110f9117987: crates/sim/tests/stress.rs

crates/sim/tests/stress.rs:
