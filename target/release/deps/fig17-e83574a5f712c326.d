/root/repo/target/release/deps/fig17-e83574a5f712c326.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-e83574a5f712c326: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
