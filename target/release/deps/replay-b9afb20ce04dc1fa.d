/root/repo/target/release/deps/replay-b9afb20ce04dc1fa.d: crates/core/tests/replay.rs

/root/repo/target/release/deps/replay-b9afb20ce04dc1fa: crates/core/tests/replay.rs

crates/core/tests/replay.rs:
