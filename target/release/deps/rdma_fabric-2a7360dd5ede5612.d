/root/repo/target/release/deps/rdma_fabric-2a7360dd5ede5612.d: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

/root/repo/target/release/deps/librdma_fabric-2a7360dd5ede5612.rlib: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

/root/repo/target/release/deps/librdma_fabric-2a7360dd5ede5612.rmeta: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

crates/fabric/src/lib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/fabric.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/net.rs:
crates/fabric/src/region.rs:
