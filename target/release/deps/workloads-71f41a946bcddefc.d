/root/repo/target/release/deps/workloads-71f41a946bcddefc.d: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/workloads-71f41a946bcddefc: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
