/root/repo/target/release/deps/rdma_fabric-4c7063007d89626e.d: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

/root/repo/target/release/deps/rdma_fabric-4c7063007d89626e: crates/fabric/src/lib.rs crates/fabric/src/cost.rs crates/fabric/src/fabric.rs crates/fabric/src/fault.rs crates/fabric/src/net.rs crates/fabric/src/region.rs

crates/fabric/src/lib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/fabric.rs:
crates/fabric/src/fault.rs:
crates/fabric/src/net.rs:
crates/fabric/src/region.rs:
