/root/repo/target/release/deps/fig18-3c3d121210211a38.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-3c3d121210211a38: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
