/root/repo/target/release/deps/table1-4e6d7d3df77327a7.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-4e6d7d3df77327a7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
