/root/repo/target/release/deps/fig18-2d86500d7067e879.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-2d86500d7067e879: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
