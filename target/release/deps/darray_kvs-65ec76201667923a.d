/root/repo/target/release/deps/darray_kvs-65ec76201667923a.d: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

/root/repo/target/release/deps/libdarray_kvs-65ec76201667923a.rlib: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

/root/repo/target/release/deps/libdarray_kvs-65ec76201667923a.rmeta: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

crates/kvs/src/lib.rs:
crates/kvs/src/backend.rs:
crates/kvs/src/entry.rs:
crates/kvs/src/hash.rs:
crates/kvs/src/slab.rs:
crates/kvs/src/store.rs:
