/root/repo/target/release/deps/fig16-53d4890f07904f1a.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-53d4890f07904f1a: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
