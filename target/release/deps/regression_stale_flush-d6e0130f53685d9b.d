/root/repo/target/release/deps/regression_stale_flush-d6e0130f53685d9b.d: crates/core/tests/regression_stale_flush.rs

/root/repo/target/release/deps/regression_stale_flush-d6e0130f53685d9b: crates/core/tests/regression_stale_flush.rs

crates/core/tests/regression_stale_flush.rs:
