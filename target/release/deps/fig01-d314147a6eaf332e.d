/root/repo/target/release/deps/fig01-d314147a6eaf332e.d: crates/bench/src/bin/fig01.rs

/root/repo/target/release/deps/fig01-d314147a6eaf332e: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
