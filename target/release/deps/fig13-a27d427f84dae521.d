/root/repo/target/release/deps/fig13-a27d427f84dae521.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-a27d427f84dae521: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
