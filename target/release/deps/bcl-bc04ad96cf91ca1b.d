/root/repo/target/release/deps/bcl-bc04ad96cf91ca1b.d: crates/bcl/src/lib.rs

/root/repo/target/release/deps/libbcl-bc04ad96cf91ca1b.rlib: crates/bcl/src/lib.rs

/root/repo/target/release/deps/libbcl-bc04ad96cf91ca1b.rmeta: crates/bcl/src/lib.rs

crates/bcl/src/lib.rs:
