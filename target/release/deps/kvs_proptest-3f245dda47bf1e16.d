/root/repo/target/release/deps/kvs_proptest-3f245dda47bf1e16.d: crates/kvs/tests/kvs_proptest.rs

/root/repo/target/release/deps/kvs_proptest-3f245dda47bf1e16: crates/kvs/tests/kvs_proptest.rs

crates/kvs/tests/kvs_proptest.rs:
