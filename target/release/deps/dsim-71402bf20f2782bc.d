/root/repo/target/release/deps/dsim-71402bf20f2782bc.d: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

/root/repo/target/release/deps/dsim-71402bf20f2782bc: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/ctx.rs:
crates/sim/src/mailbox.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
