/root/repo/target/release/deps/gam-17fea61c3b64af6a.d: crates/gam/src/lib.rs

/root/repo/target/release/deps/libgam-17fea61c3b64af6a.rlib: crates/gam/src/lib.rs

/root/repo/target/release/deps/libgam-17fea61c3b64af6a.rmeta: crates/gam/src/lib.rs

crates/gam/src/lib.rs:
