/root/repo/target/release/deps/ablations-98b2dfb6c6325a7d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-98b2dfb6c6325a7d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
