/root/repo/target/release/deps/protocol_edge-a8511dc36191acd5.d: crates/core/tests/protocol_edge.rs

/root/repo/target/release/deps/protocol_edge-a8511dc36191acd5: crates/core/tests/protocol_edge.rs

crates/core/tests/protocol_edge.rs:
