/root/repo/target/release/deps/dsim-19f0f0c905488d02.d: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libdsim-19f0f0c905488d02.rlib: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libdsim-19f0f0c905488d02.rmeta: crates/sim/src/lib.rs crates/sim/src/ctx.rs crates/sim/src/mailbox.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/sync.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/ctx.rs:
crates/sim/src/mailbox.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/sync.rs:
crates/sim/src/time.rs:
