/root/repo/target/release/deps/darray_repro-726609427d7cb0be.d: src/lib.rs

/root/repo/target/release/deps/libdarray_repro-726609427d7cb0be.rlib: src/lib.rs

/root/repo/target/release/deps/libdarray_repro-726609427d7cb0be.rmeta: src/lib.rs

src/lib.rs:
