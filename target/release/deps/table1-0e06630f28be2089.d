/root/repo/target/release/deps/table1-0e06630f28be2089.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-0e06630f28be2089: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
