/root/repo/target/release/deps/darray_graph-1d6fffdf9952776c.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs

/root/repo/target/release/deps/darray_graph-1d6fffdf9952776c: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/csr.rs:
crates/graph/src/gam_engine.rs:
crates/graph/src/gemini.rs:
crates/graph/src/local.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/reference.rs:
crates/graph/src/rmat.rs:
crates/graph/src/sssp.rs:
