/root/repo/target/release/deps/chaos-21a12e77dac8493d.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-21a12e77dac8493d: tests/chaos.rs

tests/chaos.rs:
