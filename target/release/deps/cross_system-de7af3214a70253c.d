/root/repo/target/release/deps/cross_system-de7af3214a70253c.d: tests/cross_system.rs

/root/repo/target/release/deps/cross_system-de7af3214a70253c: tests/cross_system.rs

tests/cross_system.rs:
