/root/repo/target/release/deps/proptests-c2a0417a1878e574.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-c2a0417a1878e574: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
