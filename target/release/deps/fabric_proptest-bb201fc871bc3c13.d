/root/repo/target/release/deps/fabric_proptest-bb201fc871bc3c13.d: crates/fabric/tests/fabric_proptest.rs

/root/repo/target/release/deps/fabric_proptest-bb201fc871bc3c13: crates/fabric/tests/fabric_proptest.rs

crates/fabric/tests/fabric_proptest.rs:
