/root/repo/target/release/deps/all_figures-c68484be4f52be63.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-c68484be4f52be63: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
