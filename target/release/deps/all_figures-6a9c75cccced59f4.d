/root/repo/target/release/deps/all_figures-6a9c75cccced59f4.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-6a9c75cccced59f4: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
