/root/repo/target/release/deps/paper_claims-36014c502f8ee53a.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-36014c502f8ee53a: tests/paper_claims.rs

tests/paper_claims.rs:
