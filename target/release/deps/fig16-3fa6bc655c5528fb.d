/root/repo/target/release/deps/fig16-3fa6bc655c5528fb.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-3fa6bc655c5528fb: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
