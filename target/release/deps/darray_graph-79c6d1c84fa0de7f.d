/root/repo/target/release/deps/darray_graph-79c6d1c84fa0de7f.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs

/root/repo/target/release/deps/libdarray_graph-79c6d1c84fa0de7f.rlib: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs

/root/repo/target/release/deps/libdarray_graph-79c6d1c84fa0de7f.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/gam_engine.rs crates/graph/src/gemini.rs crates/graph/src/local.rs crates/graph/src/pagerank.rs crates/graph/src/reference.rs crates/graph/src/rmat.rs crates/graph/src/sssp.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/csr.rs:
crates/graph/src/gam_engine.rs:
crates/graph/src/gemini.rs:
crates/graph/src/local.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/reference.rs:
crates/graph/src/rmat.rs:
crates/graph/src/sssp.rs:
