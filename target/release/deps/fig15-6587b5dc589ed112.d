/root/repo/target/release/deps/fig15-6587b5dc589ed112.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-6587b5dc589ed112: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
