/root/repo/target/release/deps/fig15-9cd7df2625f3bbd6.d: crates/bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-9cd7df2625f3bbd6: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
