/root/repo/target/release/deps/chaos-971611429a4e431f.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-971611429a4e431f: tests/chaos.rs

tests/chaos.rs:
