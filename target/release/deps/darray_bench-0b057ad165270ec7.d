/root/repo/target/release/deps/darray_bench-0b057ad165270ec7.d: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libdarray_bench-0b057ad165270ec7.rlib: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libdarray_bench-0b057ad165270ec7.rmeta: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/graphs.rs:
crates/bench/src/kvsbench.rs:
crates/bench/src/micro.rs:
crates/bench/src/operate.rs:
crates/bench/src/report.rs:
