/root/repo/target/release/deps/kvs_integration-c473a7b65259f6f0.d: crates/kvs/tests/kvs_integration.rs

/root/repo/target/release/deps/kvs_integration-c473a7b65259f6f0: crates/kvs/tests/kvs_integration.rs

crates/kvs/tests/kvs_integration.rs:
