/root/repo/target/release/deps/fig17-989b6e49ae46f3b7.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-989b6e49ae46f3b7: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
