/root/repo/target/release/deps/fig14-8f44034a667f0ed3.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-8f44034a667f0ed3: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
