/root/repo/target/release/deps/protocol-2a81458ab47ebfc8.d: crates/core/tests/protocol.rs

/root/repo/target/release/deps/protocol-2a81458ab47ebfc8: crates/core/tests/protocol.rs

crates/core/tests/protocol.rs:
