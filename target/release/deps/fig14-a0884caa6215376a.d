/root/repo/target/release/deps/fig14-a0884caa6215376a.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-a0884caa6215376a: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
