/root/repo/target/release/deps/darray_kvs-16bbc7fe2a28b8f8.d: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

/root/repo/target/release/deps/darray_kvs-16bbc7fe2a28b8f8: crates/kvs/src/lib.rs crates/kvs/src/backend.rs crates/kvs/src/entry.rs crates/kvs/src/hash.rs crates/kvs/src/slab.rs crates/kvs/src/store.rs

crates/kvs/src/lib.rs:
crates/kvs/src/backend.rs:
crates/kvs/src/entry.rs:
crates/kvs/src/hash.rs:
crates/kvs/src/slab.rs:
crates/kvs/src/store.rs:
