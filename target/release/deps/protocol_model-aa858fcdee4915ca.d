/root/repo/target/release/deps/protocol_model-aa858fcdee4915ca.d: crates/core/tests/protocol_model.rs

/root/repo/target/release/deps/protocol_model-aa858fcdee4915ca: crates/core/tests/protocol_model.rs

crates/core/tests/protocol_model.rs:
