/root/repo/target/release/deps/workloads-9b28652ed809677c.d: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/libworkloads-9b28652ed809677c.rlib: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/libworkloads-9b28652ed809677c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/rng.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
