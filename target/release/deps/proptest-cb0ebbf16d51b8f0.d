/root/repo/target/release/deps/proptest-cb0ebbf16d51b8f0.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-cb0ebbf16d51b8f0: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
