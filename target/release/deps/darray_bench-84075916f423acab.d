/root/repo/target/release/deps/darray_bench-84075916f423acab.d: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

/root/repo/target/release/deps/darray_bench-84075916f423acab: crates/bench/src/lib.rs crates/bench/src/graphs.rs crates/bench/src/kvsbench.rs crates/bench/src/micro.rs crates/bench/src/operate.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/graphs.rs:
crates/bench/src/kvsbench.rs:
crates/bench/src/micro.rs:
crates/bench/src/operate.rs:
crates/bench/src/report.rs:
