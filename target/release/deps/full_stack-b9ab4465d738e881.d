/root/repo/target/release/deps/full_stack-b9ab4465d738e881.d: tests/full_stack.rs

/root/repo/target/release/deps/full_stack-b9ab4465d738e881: tests/full_stack.rs

tests/full_stack.rs:
