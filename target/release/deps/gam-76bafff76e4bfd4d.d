/root/repo/target/release/deps/gam-76bafff76e4bfd4d.d: crates/gam/src/lib.rs

/root/repo/target/release/deps/gam-76bafff76e4bfd4d: crates/gam/src/lib.rs

crates/gam/src/lib.rs:
