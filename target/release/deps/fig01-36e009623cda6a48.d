/root/repo/target/release/deps/fig01-36e009623cda6a48.d: crates/bench/src/bin/fig01.rs

/root/repo/target/release/deps/fig01-36e009623cda6a48: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
