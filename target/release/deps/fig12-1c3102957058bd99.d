/root/repo/target/release/deps/fig12-1c3102957058bd99.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-1c3102957058bd99: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
