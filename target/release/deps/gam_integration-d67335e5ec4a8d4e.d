/root/repo/target/release/deps/gam_integration-d67335e5ec4a8d4e.d: crates/gam/tests/gam_integration.rs

/root/repo/target/release/deps/gam_integration-d67335e5ec4a8d4e: crates/gam/tests/gam_integration.rs

crates/gam/tests/gam_integration.rs:
