/root/repo/target/release/deps/bcl-6b32c9f0660698ff.d: crates/bcl/src/lib.rs

/root/repo/target/release/deps/bcl-6b32c9f0660698ff: crates/bcl/src/lib.rs

crates/bcl/src/lib.rs:
