/root/repo/target/release/deps/fig12-2ecb1afc6b555930.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-2ecb1afc6b555930: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
