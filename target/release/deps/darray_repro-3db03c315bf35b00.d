/root/repo/target/release/deps/darray_repro-3db03c315bf35b00.d: src/lib.rs

/root/repo/target/release/deps/libdarray_repro-3db03c315bf35b00.rlib: src/lib.rs

/root/repo/target/release/deps/libdarray_repro-3db03c315bf35b00.rmeta: src/lib.rs

src/lib.rs:
