/root/repo/target/release/deps/darray_repro-7c59e089ccc5ed16.d: src/lib.rs

/root/repo/target/release/deps/darray_repro-7c59e089ccc5ed16: src/lib.rs

src/lib.rs:
