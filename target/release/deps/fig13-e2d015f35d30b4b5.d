/root/repo/target/release/deps/fig13-e2d015f35d30b4b5.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-e2d015f35d30b4b5: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
