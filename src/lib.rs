//! Workspace umbrella crate: integration tests live in `tests/`, examples in `examples/`.
