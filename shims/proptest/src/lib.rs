//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses. The build container has no network access and no registry
//! cache, so external crates are provided as local shims (see
//! `shims/README.md`).
//!
//! Differences from the real crate, all acceptable for these tests:
//! - inputs are generated from a fixed deterministic seed (per-case
//!   splitmix64 streams), so every run explores the same cases;
//! - there is no shrinking — a failing case reports its case index and the
//!   generated inputs' `Debug` (via the assertion message) and aborts;
//! - `ProptestConfig` carries only the fields this workspace sets.

pub mod test_runner {
    /// Error raised by `prop_assert!`-style macros inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration. Mirrors the handful of `ProptestConfig` fields
    /// the workspace sets; construct with struct-update syntax:
    /// `Config { cases: 12, ..Config::default() }`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Unused (kept for source compatibility).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic splitmix64 stream used to generate inputs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[lo, hi)`. The slight modulo bias is irrelevant
        /// for test-input generation.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Drives one `proptest!`-generated test: `cases` deterministic cases,
    /// each with its own RNG stream.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            Self { config }
        }

        pub fn run_cases(
            &mut self,
            mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        ) {
            for i in 0..self.config.cases as u64 {
                let mut rng = TestRng::from_seed(i.wrapping_mul(0xA076_1D64_78BD_642F));
                if let Err(e) = case(&mut rng) {
                    panic!("proptest case {i} failed: {}", e.message);
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Value-generation strategy. No shrinking: `generate` is the whole API.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!`.
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Weighted union of strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms[0].1.generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// `any::<T>()` support.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T> {
        _pd: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _pd: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec!`]: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The `proptest::bool::ANY` strategy.
    pub struct Any;
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)).into(),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest!` test-definition macro: each generated `#[test]` runs
/// `config.cases` deterministic cases of its body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_cases(|prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    result
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_seed_same_values() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..100, 3..9);
        let a = s.generate(&mut TestRng::from_seed(7));
        let b = s.generate(&mut TestRng::from_seed(7));
        assert_eq!(a, b);
        assert!(a.len() >= 3 && a.len() < 9);
        assert!(a.iter().all(|&v| v < 100));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_in_range(x in 5u32..17, flips in crate::collection::vec(crate::bool::ANY, 4)) {
            prop_assert!((5..17).contains(&x));
            prop_assert_eq!(flips.len(), 4);
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            2 => (0u64..10).prop_map(|x| x * 2),
            1 => (100u64..110).prop_map(|x| x),
        ]) {
            prop_assert!(v < 20 || (100..110).contains(&v));
        }
    }
}
