//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace uses. The build container has no network access and no registry
//! cache, so external crates are provided as local shims (see
//! `shims/README.md`).
//!
//! The shim is a plain timing harness: each `bench_function` runs a short
//! calibration pass, then measures `sample_size` samples and prints
//! min/mean/max per iteration. There are no plots, no statistics beyond the
//! mean, and no baseline comparisons — enough to keep `cargo bench` useful
//! and the bench sources compiling unchanged.

use std::time::{Duration, Instant};

pub mod measurement {
    /// Marker measurement type; the shim always measures wall time.
    pub struct WallTime;
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// No-op: the shim never plots.
    pub fn without_plots(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
            _pd: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
    _pd: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        // Calibration: find an iteration count that fills roughly one
        // sample's worth of the measurement budget.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut iters_per_sample = 1u64;
        loop {
            b.iters = iters_per_sample;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if Instant::now() >= warm_deadline {
                break;
            }
            if b.elapsed * (self.sample_size as u32)
                >= self.measurement_time.max(Duration::from_millis(1))
            {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut measured_iters = 0u64;
        for _ in 0..self.sample_size {
            b.iters = iters_per_sample;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            let per_iter = b.elapsed / (iters_per_sample.max(1) as u32);
            total += b.elapsed;
            measured_iters += iters_per_sample;
            min = min.min(per_iter);
            max = max.max(per_iter);
        }
        let mean = if measured_iters > 0 {
            Duration::from_nanos((total.as_nanos() / measured_iters as u128) as u64)
        } else {
            Duration::ZERO
        };
        println!(
            "  {}/{id}: mean {mean:?}/iter (min {min:?}, max {max:?}, {iters_per_sample} iters x {} samples)",
            self.name, self.sample_size
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to the closure of `bench_function`; accumulates measured time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `iters` executions of `f` with wall time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }

    /// Let the closure time `iters` iterations itself and report the total
    /// duration (used here to report *virtual* simulator time).
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed += f(self.iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
        };
        let mut ran = 0u64;
        let mut g = c.benchmark_group("t");
        g.sample_size(2).warm_up_time(Duration::from_millis(1));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                ran += iters;
                Duration::from_nanos(10 * iters)
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
