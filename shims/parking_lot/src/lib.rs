//! Offline drop-in replacement for the subset of the `parking_lot` API this
//! workspace uses, implemented over `std::sync`. The build container has no
//! network access and no registry cache, so external crates are provided as
//! local shims (see `shims/README.md`).
//!
//! Semantic differences from the real crate are deliberately ignored here:
//! poisoning is swallowed (parking_lot has none), and fairness/eventual
//! fairness is whatever `std::sync` provides. None of the workspace code
//! depends on those properties.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as stdsync;

/// Recover the guard from a poisoned lock: parking_lot has no poisoning, so
/// the shim ignores it the way parking_lot would.
fn unpoison<G>(r: Result<G, stdsync::PoisonError<G>>) -> G {
    r.unwrap_or_else(stdsync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: stdsync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: stdsync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(unpoison(self.inner.lock())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(stdsync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(stdsync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<stdsync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken by Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken by Condvar::wait")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock mirroring `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: stdsync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: stdsync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: unpoison(self.inner.read()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: unpoison(self.inner.write()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: stdsync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: stdsync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Condition variable mirroring `parking_lot::Condvar` (wait through a
/// `&mut MutexGuard` rather than by value).
pub struct Condvar {
    inner: stdsync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: stdsync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        guard.inner = Some(unpoison(self.inner.wait(g)));
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        h.join().unwrap();
    }
}
